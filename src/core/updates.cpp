#include "core/updates.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/stopwatch.hpp"

namespace dsud {
namespace {

/// Meter/clock bracket for one update.  Measures cost as a global-meter
/// delta, which is only exact while nothing else uses the links — part of
/// the maintainer's no-concurrent-queries contract.
class UpdateScope {
 public:
  UpdateScope(Coordinator& coordinator, UpdateStats& stats)
      : coordinator_(coordinator), stats_(stats) {
    if (coordinator_.meter() != nullptr) {
      baseline_ = coordinator_.meter()->totals();
    }
  }

  ~UpdateScope() {
    stats_.seconds = watch_.elapsedSeconds();
    if (coordinator_.meter() != nullptr) {
      const UsageTotals now = coordinator_.meter()->totals();
      stats_.tuplesShipped = now.tuples - baseline_.tuples;
      stats_.bytesShipped = now.bytes - baseline_.bytes;
    }
  }

 private:
  Coordinator& coordinator_;
  UpdateStats& stats_;
  UsageTotals baseline_;
  Stopwatch watch_;
};

}  // namespace

SkylineMaintainer::SkylineMaintainer(Coordinator& coordinator,
                                     QueryConfig config,
                                     MaintenanceStrategy strategy)
    : coordinator_(coordinator), engine_(coordinator),
      config_(std::move(config)), strategy_(strategy) {
  if (config_.window.has_value()) {
    throw std::invalid_argument(
        "SkylineMaintainer: constrained (windowed) queries are one-shot; "
        "maintenance supports full-space configurations only");
  }
}

QueryResult SkylineMaintainer::initialize() {
  QueryResult result = engine_.runEdsud(config_);
  sky_.clear();
  for (const GlobalSkylineEntry& e : result.skyline) {
    sky_.emplace(e.tuple.id, e);
  }
  if (strategy_ == MaintenanceStrategy::kIncremental) installReplicas();
  initialized_ = true;
  return result;
}

void SkylineMaintainer::installReplicas() {
  for (const auto& [id, entry] : sky_) {
    ReplicaAddRequest request;
    request.entry = Candidate{entry.site, entry.tuple, entry.localSkyProb};
    request.globalSkyProb = entry.globalSkyProb;
    for (std::size_t i = 0; i < coordinator_.siteCount(); ++i) {
      coordinator_.site(i).replicaAdd(request);
    }
  }
}

UpdateStats SkylineMaintainer::apply(const UpdateEvent& event) {
  if (!initialized_) {
    throw std::logic_error("SkylineMaintainer: initialize() before apply()");
  }
  return strategy_ == MaintenanceStrategy::kIncremental
             ? applyIncremental(event)
             : applyNaive(event);
}

UpdateStats SkylineMaintainer::applyNaive(const UpdateEvent& event) {
  UpdateStats stats;
  UpdateScope scope(coordinator_, stats);

  // Apply the raw update, then recompute from scratch (paper's strawman).
  if (event.kind == UpdateEvent::Kind::kInsert) {
    coordinator_.applyInsert(event.site, ApplyInsertRequest{event.tuple});
  } else {
    coordinator_.applyDelete(
        event.site, ApplyDeleteRequest{event.tuple.id, event.tuple.values});
  }

  const QueryResult result = engine_.runEdsud(config_);
  std::unordered_map<TupleId, GlobalSkylineEntry> fresh;
  for (const GlobalSkylineEntry& e : result.skyline) {
    fresh.emplace(e.tuple.id, e);
  }
  stats.broadcasts = result.stats.broadcasts;
  stats.skylineChanged = fresh.size() != sky_.size() ||
                         !std::all_of(fresh.begin(), fresh.end(),
                                      [&](const auto& kv) {
                                        return sky_.contains(kv.first);
                                      });
  sky_ = std::move(fresh);
  return stats;
}

UpdateStats SkylineMaintainer::applyIncremental(const UpdateEvent& event) {
  UpdateStats stats;
  UpdateScope scope(coordinator_, stats);
  if (event.kind == UpdateEvent::Kind::kInsert) {
    incrementalInsert(event, stats);
  } else {
    incrementalDelete(event, stats);
  }
  return stats;
}

void SkylineMaintainer::addSkyline(const Candidate& c, double globalSkyProb) {
  GlobalSkylineEntry entry;
  entry.site = c.site;
  entry.tuple = c.tuple;
  entry.localSkyProb = c.localSkyProb;
  entry.globalSkyProb = globalSkyProb;
  sky_[c.tuple.id] = std::move(entry);

  ReplicaAddRequest request{c, globalSkyProb};
  for (std::size_t i = 0; i < coordinator_.siteCount(); ++i) {
    coordinator_.site(i).replicaAdd(request);
  }
}

void SkylineMaintainer::removeSkyline(TupleId id) {
  sky_.erase(id);
  const ReplicaRemoveRequest request{id};
  for (std::size_t i = 0; i < coordinator_.siteCount(); ++i) {
    coordinator_.site(i).replicaRemove(request);
  }
}

void SkylineMaintainer::incrementalInsert(const UpdateEvent& event,
                                          UpdateStats& stats) {
  const Tuple& t = event.tuple;
  const ApplyInsertResponse response =
      coordinator_.applyInsert(event.site, ApplyInsertRequest{t});

  // Exact, network-free rescale of dominated skyline members: the new tuple
  // multiplies their global probability by (1 − P(t)).
  for (const TupleId id : response.dominatedReplica) {
    auto it = sky_.find(id);
    if (it == sky_.end()) continue;
    it->second.globalSkyProb *= 1.0 - t.prob;
    if (it->second.globalSkyProb < config_.q) {
      removeSkyline(id);
      stats.skylineChanged = true;
    }
  }

  // The new tuple itself joins only when its provable bound reaches q.
  if (response.globalUpperBound >= config_.q) {
    QueryStats evalStats;
    const Candidate c{event.site, t, response.localSkyProb};
    const double globalSkyProb = coordinator_.evaluateGlobally(
        c, /*pruneLocal=*/false, evalStats,
        config_.effectiveMask(coordinator_.dims()));
    stats.broadcasts += evalStats.broadcasts;
    if (globalSkyProb >= config_.q) {
      addSkyline(c, globalSkyProb);
      stats.skylineChanged = true;
    }
  }
}

void SkylineMaintainer::incrementalDelete(const UpdateEvent& event,
                                          UpdateStats& stats) {
  const ApplyDeleteResponse response = coordinator_.applyDelete(
      event.site, ApplyDeleteRequest{event.tuple.id, event.tuple.values});
  if (!response.existed) return;

  const Tuple deleted{event.tuple.id, event.tuple.values, response.prob};

  if (sky_.contains(deleted.id)) {
    removeSkyline(deleted.id);
    stats.skylineChanged = true;
  }

  // Surviving members the deleted tuple used to dominate regain the
  // (1 − P(t)) factor; exact and network-free.  (P(t) = 1 cannot occur here:
  // such a dominator forces every dominated probability to zero.)
  const DimMask mask = config_.effectiveMask(deleted.values.size());
  if (deleted.prob < 1.0) {
    for (auto& [id, entry] : sky_) {
      if (dominates(deleted.values, entry.tuple.values, mask)) {
        entry.globalSkyProb /= 1.0 - deleted.prob;
      }
    }
  }

  // Promotion repair: previously unqualified tuples dominated by the deleted
  // tuple may now pass q; every site searches that region.
  std::vector<Candidate> candidates;
  std::unordered_set<TupleId> seen;
  for (std::size_t i = 0; i < coordinator_.siteCount(); ++i) {
    RepairDeleteResponse repair = coordinator_.site(i).repairDelete(
        RepairDeleteRequest{deleted, event.site, config_.q, mask});
    ++stats.broadcasts;
    for (Candidate& c : repair.candidates) {
      if (sky_.contains(c.tuple.id)) continue;
      if (!seen.insert(c.tuple.id).second) continue;
      candidates.push_back(std::move(c));
    }
  }
  for (const Candidate& c : candidates) {
    QueryStats evalStats;
    const double globalSkyProb = coordinator_.evaluateGlobally(
        c, /*pruneLocal=*/false, evalStats, mask);
    stats.broadcasts += evalStats.broadcasts;
    if (globalSkyProb >= config_.q) {
      addSkyline(c, globalSkyProb);
      stats.skylineChanged = true;
    }
  }
}

std::vector<GlobalSkylineEntry> SkylineMaintainer::skyline() const {
  std::vector<GlobalSkylineEntry> result;
  result.reserve(sky_.size());
  for (const auto& [id, entry] : sky_) result.push_back(entry);
  sortByGlobalProbability(result);
  return result;
}

}  // namespace dsud
