// Coordinator-side view of one local site.
//
// `SiteHandle` is the typed RPC surface the algorithms program against;
// `RpcSiteHandle` is the production implementation that serialises protocol
// messages onto a ClientChannel (in-process or TCP) and meters both bytes
// and the paper's tuple-count bandwidth.
#pragma once

#include <memory>

#include "core/protocol.hpp"
#include "net/bandwidth.hpp"
#include "net/transport.hpp"

namespace dsud {

/// Typed operations the coordinator performs on one site.
class SiteHandle {
 public:
  virtual ~SiteHandle() = default;

  virtual SiteId siteId() const noexcept = 0;

  virtual PrepareResponse prepare(const PrepareRequest& request) = 0;
  virtual NextCandidateResponse nextCandidate() = 0;
  virtual EvaluateResponse evaluate(const EvaluateRequest& request) = 0;
  virtual ShipAllResponse shipAll() = 0;

  virtual ApplyInsertResponse applyInsert(const ApplyInsertRequest&) = 0;
  virtual ApplyDeleteResponse applyDelete(const ApplyDeleteRequest&) = 0;
  virtual RepairDeleteResponse repairDelete(const RepairDeleteRequest&) = 0;
  virtual void replicaAdd(const ReplicaAddRequest&) = 0;
  virtual void replicaRemove(const ReplicaRemoveRequest&) = 0;
};

/// SiteHandle over a ClientChannel with bandwidth accounting.
///
/// Tuple accounting follows the paper (Sec. 3.2): one tuple per shipped
/// Candidate or Tuple payload in either direction; probability scalars,
/// flags, and replica-removal ids are control traffic (bytes only).  Update
/// *injections* (ApplyInsert/ApplyDelete requests) are not counted — they
/// model events that originate at the site itself.
class RpcSiteHandle final : public SiteHandle {
 public:
  RpcSiteHandle(SiteId site, std::unique_ptr<ClientChannel> channel,
                BandwidthMeter* meter);

  SiteId siteId() const noexcept override { return site_; }

  PrepareResponse prepare(const PrepareRequest& request) override;
  NextCandidateResponse nextCandidate() override;
  EvaluateResponse evaluate(const EvaluateRequest& request) override;
  ShipAllResponse shipAll() override;

  ApplyInsertResponse applyInsert(const ApplyInsertRequest&) override;
  ApplyDeleteResponse applyDelete(const ApplyDeleteRequest&) override;
  RepairDeleteResponse repairDelete(const RepairDeleteRequest&) override;
  void replicaAdd(const ReplicaAddRequest&) override;
  void replicaRemove(const ReplicaRemoveRequest&) override;

 private:
  Frame roundTrip(const Frame& request);
  void countTuples(std::uint64_t toSite, std::uint64_t fromSite);

  SiteId site_;
  std::unique_ptr<ClientChannel> channel_;
  BandwidthMeter* meter_;  // may be null (no accounting)
};

}  // namespace dsud
