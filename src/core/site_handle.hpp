// Coordinator-side view of one local site.
//
// `SiteHandle` is the typed RPC surface the algorithms program against;
// `RpcSiteHandle` is the production implementation that serialises protocol
// messages onto a per-site ChannelPool (in-process or TCP) and meters both
// bytes and the paper's tuple-count bandwidth.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "common/rng.hpp"
#include "core/health.hpp"
#include "core/protocol.hpp"
#include "net/bandwidth.hpp"
#include "net/channel_pool.hpp"
#include "net/fault.hpp"
#include "net/transport.hpp"

namespace dsud {

/// Typed operations the coordinator performs on one site.
///
/// Thread-safety contract: a SiteHandle instance is session-confined — one
/// query session (and its broadcast workers, which call sequentially per
/// handle) uses one instance.  Concurrent queries each call `openSession`
/// to get their own view; the returned handles may be used from different
/// threads simultaneously because they share only thread-safe state (the
/// channel pool, the meter, the site itself).
class SiteHandle {
 public:
  virtual ~SiteHandle() = default;

  virtual SiteId siteId() const noexcept = 0;

  virtual PrepareResponse prepare(const PrepareRequest& request) = 0;
  virtual NextCandidateResponse nextCandidate(
      const NextCandidateRequest& request) = 0;
  virtual EvaluateResponse evaluate(const EvaluateRequest& request) = 0;
  virtual ShipAllResponse shipAll() = 0;
  virtual void finishQuery(const FinishQueryRequest& request) = 0;

  virtual ApplyInsertResponse applyInsert(const ApplyInsertRequest&) = 0;
  virtual ApplyDeleteResponse applyDelete(const ApplyDeleteRequest&) = 0;
  virtual RepairDeleteResponse repairDelete(const RepairDeleteRequest&) = 0;
  virtual void replicaAdd(const ReplicaAddRequest&) = 0;
  virtual void replicaRemove(const ReplicaRemoveRequest&) = 0;

  /// Elastic-membership operations (repartitioning traffic).  Only stores
  /// reachable over a transport take part in a rebalance, so the default
  /// implementations reject the call.
  virtual StreamTuplesResponse streamTuples(const StreamTuplesRequest&) {
    throw std::logic_error("SiteHandle: streamTuples not supported");
  }
  virtual JoinSiteResponse joinSite(const JoinSiteRequest&) {
    throw std::logic_error("SiteHandle: joinSite not supported");
  }
  virtual LeaveSiteResponse leaveSite(const LeaveSiteRequest&) {
    throw std::logic_error("SiteHandle: leaveSite not supported");
  }

  /// Pulls the site-side span timeline of one session (SiteTraceMode::
  /// kFetch).  Non-transport implementations have no remote timeline and
  /// return an empty trace.
  virtual FetchTraceResponse fetchTrace(const FetchTraceRequest&) {
    return {};
  }

  /// Directs piggybacked site spans into `sink` (null detaches): when set,
  /// query responses are decoded expecting the optional trace-block trailer
  /// and its spans are appended to the sink.  Session-confined, like the
  /// handle: the sink is read by the owning query only after its last RPC.
  virtual void setTraceSink(obs::QueryTrace* /*sink*/) {}

  /// Opens a per-query view of this site whose traffic is additionally
  /// recorded into `scope` (may be null).  The default implementation wraps
  /// `*this` and counts round trips and tuples (bytes are transport detail
  /// it cannot see); RpcSiteHandle returns a clone sharing its channel pool
  /// that accounts bytes exactly.  The parent handle must outlive the view.
  virtual std::unique_ptr<SiteHandle> openSession(QueryUsage* scope);

  /// Fault-tolerant per-query view: the returned handle applies `fault`
  /// (deadline on every call; retry with backoff around the query-phase
  /// operations prepare / nextCandidate / evaluate / shipAll) and consults
  /// `health` (may be null) as a per-site circuit breaker.  When the retry
  /// budget is exhausted — or the breaker rejects the operation outright —
  /// the handle throws SiteFailure.  The default implementation ignores the
  /// fault configuration and delegates to openSession(scope).
  virtual std::unique_ptr<SiteHandle> openSession(
      QueryUsage* scope, const FaultOptions& fault, SiteHealth* health,
      obs::MetricsRegistry* metrics);

  /// Number of transport attempts the last successful query-phase operation
  /// on this handle took (1 = no retries).  Implementations without a retry
  /// layer always report 1.
  virtual std::uint32_t lastAttempts() const noexcept { return 1; }

  /// Sequence numbers assigned to the most recent kNextCandidate/kEvaluate
  /// operations (0 before the first).  The coordinator stamps these on its
  /// RPC spans so merged site spans can be matched back by (site, op, seq).
  virtual std::uint64_t lastNextSeq() const noexcept { return 0; }
  virtual std::uint64_t lastEvalSeq() const noexcept { return 0; }

  /// Circuit breaker this session handle consults (null when none) — lets
  /// the trace layer annotate retried RPCs with the live breaker state
  /// without positional coordinator lookups (indices are not stable once
  /// sites join and leave).  For a failover handle, the breaker of the
  /// currently active replica.
  virtual SiteHealth* sessionHealth() const noexcept { return nullptr; }

  /// Replica switches this session performed so far (EXPLAIN profile).
  /// Non-replicated handles never fail over.
  virtual std::uint64_t failovers() const noexcept { return 0; }
};

/// SiteHandle over a per-site ChannelPool with bandwidth accounting.
///
/// Tuple accounting follows the paper (Sec. 3.2): one tuple per shipped
/// Candidate or Tuple payload in either direction; probability scalars,
/// flags, and replica-removal ids are control traffic (bytes only).  Update
/// *injections* (ApplyInsert/ApplyDelete requests) are not counted — they
/// model events that originate at the site itself.
///
/// Every round trip leases a channel from the pool, so concurrent sessions
/// sharing the pool never interleave frames.  When constructed with a
/// per-query scope (via openSession), the leased channel's framing overhead
/// and this handle's payload/tuple counts are recorded into the scope as
/// well as the global meter.
class RpcSiteHandle final : public SiteHandle {
 public:
  RpcSiteHandle(SiteId site, std::shared_ptr<ChannelPool> pool,
                BandwidthMeter* meter, QueryUsage* scope = nullptr);

  /// Wraps one pre-built channel in a private capacity-1 pool (serialising
  /// all sessions on it).
  RpcSiteHandle(SiteId site, std::unique_ptr<ClientChannel> channel,
                BandwidthMeter* meter);

  SiteId siteId() const noexcept override { return site_; }

  PrepareResponse prepare(const PrepareRequest& request) override;
  NextCandidateResponse nextCandidate(
      const NextCandidateRequest& request) override;
  EvaluateResponse evaluate(const EvaluateRequest& request) override;
  ShipAllResponse shipAll() override;
  void finishQuery(const FinishQueryRequest& request) override;

  ApplyInsertResponse applyInsert(const ApplyInsertRequest&) override;
  ApplyDeleteResponse applyDelete(const ApplyDeleteRequest&) override;
  RepairDeleteResponse repairDelete(const RepairDeleteRequest&) override;
  void replicaAdd(const ReplicaAddRequest&) override;
  void replicaRemove(const ReplicaRemoveRequest&) override;

  StreamTuplesResponse streamTuples(const StreamTuplesRequest&) override;
  JoinSiteResponse joinSite(const JoinSiteRequest&) override;
  LeaveSiteResponse leaveSite(const LeaveSiteRequest&) override;

  FetchTraceResponse fetchTrace(const FetchTraceRequest& request) override;
  void setTraceSink(obs::QueryTrace* sink) override { traceSink_ = sink; }

  std::unique_ptr<SiteHandle> openSession(QueryUsage* scope) override;
  std::unique_ptr<SiteHandle> openSession(QueryUsage* scope,
                                          const FaultOptions& fault,
                                          SiteHealth* health,
                                          obs::MetricsRegistry* metrics) override;

  std::uint32_t lastAttempts() const noexcept override { return lastAttempts_; }
  std::uint64_t lastNextSeq() const noexcept override { return nextSeq_; }
  std::uint64_t lastEvalSeq() const noexcept override { return evalSeq_; }
  SiteHealth* sessionHealth() const noexcept override { return health_; }

 private:
  RpcSiteHandle(SiteId site, std::shared_ptr<ChannelPool> pool,
                BandwidthMeter* meter, QueryUsage* scope,
                const FaultOptions& fault, SiteHealth* health,
                obs::MetricsRegistry* metrics);

  Frame roundTrip(const Frame& request);
  /// roundTrip wrapped in the retry/breaker policy.  Only used for the
  /// query-phase operations, whose replay semantics are safe: kPrepare is
  /// idempotent (full session replace), kShipAll is pure, and
  /// kNextCandidate/kEvaluate carry a seq number the site deduplicates on.
  Frame retryingRoundTrip(const Frame& request);
  void countTuples(std::uint64_t toSite, std::uint64_t fromSite);

  /// Decodes a query response, consuming a piggyback trailer into the trace
  /// sink when one is attached and the frame carries one.
  template <typename Msg>
  Msg decodeResponse(const Frame& frame);

  SiteId site_;
  std::shared_ptr<ChannelPool> pool_;
  BandwidthMeter* meter_;   // may be null (no accounting)
  QueryUsage* scope_;       // may be null (no per-query accounting)

  // Fault-tolerance state (session-confined, like the handle itself).
  FaultOptions fault_;
  SiteHealth* health_ = nullptr;  // shared breaker, owned by the coordinator
  Rng backoffRng_;                // jitter source, seeded per site
  std::uint64_t nextSeq_ = 0;     // kNextCandidate operation numbering
  std::uint64_t evalSeq_ = 0;     // kEvaluate operation numbering
  std::uint64_t streamSeq_ = 0;   // kStreamTuples batch numbering
  std::uint32_t lastAttempts_ = 1;
  obs::Counter* retries_ = nullptr;   // dsud_retries_total{site}
  obs::Counter* timeouts_ = nullptr;  // dsud_timeouts_total{site}
  obs::QueryTrace* traceSink_ = nullptr;  // piggybacked site spans land here
};

}  // namespace dsud
