#include "core/protocol.hpp"

#include <algorithm>

namespace dsud {

void encodeTuple(ByteWriter& w, const Tuple& t) {
  w.putU64(t.id);
  w.putF64(t.prob);
  w.putF64Vector(t.values);
}

Tuple decodeTuple(ByteReader& r) {
  Tuple t;
  t.id = r.getU64();
  t.prob = r.getF64();
  t.values = r.getF64Vector();
  return t;
}

void encodeOptionalRect(ByteWriter& w, const std::optional<Rect>& rect) {
  w.putBool(rect.has_value());
  if (!rect) return;
  w.putU8(static_cast<std::uint8_t>(rect->dims()));
  for (std::size_t j = 0; j < rect->dims(); ++j) w.putF64(rect->lo(j));
  for (std::size_t j = 0; j < rect->dims(); ++j) w.putF64(rect->hi(j));
}

std::optional<Rect> decodeOptionalRect(ByteReader& r) {
  if (!r.getBool()) return std::nullopt;
  const std::uint8_t dims = r.getU8();
  if (dims == 0 || dims > kMaxDims) {
    throw SerializeError("decodeOptionalRect: dims out of range");
  }
  std::array<double, kMaxDims> lo{};
  std::array<double, kMaxDims> hi{};
  for (std::size_t j = 0; j < dims; ++j) lo[j] = r.getF64();
  for (std::size_t j = 0; j < dims; ++j) hi[j] = r.getF64();
  Rect rect(dims);
  rect.expand(std::span<const double>(lo.data(), dims));
  rect.expand(std::span<const double>(hi.data(), dims));
  return rect;
}

void encodeTraceBlock(ByteWriter& w, const obs::QueryTrace& trace) {
  w.putU32(static_cast<std::uint32_t>(trace.events.size()));
  for (const obs::TraceEvent& e : trace.events) {
    w.putString(e.name);
    w.putU32(e.parent);
    w.putU64(e.startNs);
    w.putU64(e.endNs);
    w.putU32(static_cast<std::uint32_t>(e.attrs.size()));
    for (const auto& [key, value] : e.attrs) {
      w.putString(key);
      w.putF64(value);
    }
  }
  w.putU64(trace.droppedEvents);
}

obs::QueryTrace decodeTraceBlock(ByteReader& r) {
  obs::QueryTrace trace;
  const std::uint32_t n = r.getU32();
  trace.events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    obs::TraceEvent e;
    e.name = r.getString();
    e.parent = r.getU32();
    e.startNs = r.getU64();
    e.endNs = r.getU64();
    const std::uint32_t nattrs = r.getU32();
    e.attrs.reserve(nattrs);
    for (std::uint32_t j = 0; j < nattrs; ++j) {
      std::string key = r.getString();
      const double value = r.getF64();
      e.attrs.emplace_back(std::move(key), value);
    }
    trace.events.push_back(std::move(e));
  }
  trace.droppedEvents = r.getU64();
  return trace;
}

void Candidate::encode(ByteWriter& w) const {
  w.putU32(site);
  w.putF64(localSkyProb);
  encodeTuple(w, tuple);
}

Candidate Candidate::decode(ByteReader& r) {
  Candidate c;
  c.site = r.getU32();
  c.localSkyProb = r.getF64();
  c.tuple = decodeTuple(r);
  return c;
}

void PrepareRequest::encode(ByteWriter& w) const {
  w.putU64(query);
  w.putF64(q);
  w.putU32(mask);
  w.putU8(static_cast<std::uint8_t>(prune));
  encodeOptionalRect(w, window);
  w.putU32(traceCapacity);
  w.putBool(tracePiggyback);
}

PrepareRequest PrepareRequest::decode(ByteReader& r) {
  PrepareRequest msg;
  msg.query = r.getU64();
  msg.q = r.getF64();
  msg.mask = r.getU32();
  msg.prune = static_cast<PruneRule>(r.getU8());
  msg.window = decodeOptionalRect(r);
  msg.traceCapacity = r.getU32();
  msg.tracePiggyback = r.getBool();
  return msg;
}

void NextCandidateRequest::encode(ByteWriter& w) const {
  w.putU64(query);
  w.putU64(seq);
}

NextCandidateRequest NextCandidateRequest::decode(ByteReader& r) {
  NextCandidateRequest msg;
  msg.query = r.getU64();
  msg.seq = r.getU64();
  return msg;
}

void PrepareResponse::encode(ByteWriter& w) const {
  w.putU64(localSkylineSize);
}

PrepareResponse PrepareResponse::decode(ByteReader& r) {
  PrepareResponse msg;
  msg.localSkylineSize = r.getU64();
  return msg;
}

void NextCandidateResponse::encode(ByteWriter& w) const {
  w.putBool(candidate.has_value());
  if (candidate) candidate->encode(w);
}

NextCandidateResponse NextCandidateResponse::decode(ByteReader& r) {
  NextCandidateResponse msg;
  if (r.getBool()) msg.candidate = Candidate::decode(r);
  return msg;
}

void EvaluateRequest::encode(ByteWriter& w) const {
  w.putU64(query);
  w.putU64(seq);
  encodeTuple(w, tuple);
  w.putU32(mask);
  w.putBool(pruneLocal);
  encodeOptionalRect(w, window);
}

EvaluateRequest EvaluateRequest::decode(ByteReader& r) {
  EvaluateRequest msg;
  msg.query = r.getU64();
  msg.seq = r.getU64();
  msg.tuple = decodeTuple(r);
  msg.mask = r.getU32();
  msg.pruneLocal = r.getBool();
  msg.window = decodeOptionalRect(r);
  return msg;
}

void EvaluateResponse::encode(ByteWriter& w) const {
  w.putF64(survival);
  w.putU32(prunedCount);
}

EvaluateResponse EvaluateResponse::decode(ByteReader& r) {
  EvaluateResponse msg;
  msg.survival = r.getF64();
  msg.prunedCount = r.getU32();
  return msg;
}

void ShipAllResponse::encode(ByteWriter& w) const {
  w.putU32(static_cast<std::uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) encodeTuple(w, t);
}

ShipAllResponse ShipAllResponse::decode(ByteReader& r) {
  ShipAllResponse msg;
  const std::uint32_t n = r.getU32();
  msg.tuples.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) msg.tuples.push_back(decodeTuple(r));
  return msg;
}

void ApplyInsertRequest::encode(ByteWriter& w) const { encodeTuple(w, tuple); }

ApplyInsertRequest ApplyInsertRequest::decode(ByteReader& r) {
  ApplyInsertRequest msg;
  msg.tuple = decodeTuple(r);
  return msg;
}

void ApplyInsertResponse::encode(ByteWriter& w) const {
  w.putF64(localSkyProb);
  w.putF64(globalUpperBound);
  w.putU32(static_cast<std::uint32_t>(dominatedReplica.size()));
  for (const TupleId id : dominatedReplica) w.putU64(id);
  w.putU64(datasetVersion);
}

ApplyInsertResponse ApplyInsertResponse::decode(ByteReader& r) {
  ApplyInsertResponse msg;
  msg.localSkyProb = r.getF64();
  msg.globalUpperBound = r.getF64();
  const std::uint32_t n = r.getU32();
  msg.dominatedReplica.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) msg.dominatedReplica.push_back(r.getU64());
  msg.datasetVersion = r.getU64();
  return msg;
}

void ApplyDeleteRequest::encode(ByteWriter& w) const {
  w.putU64(id);
  w.putF64Vector(values);
}

ApplyDeleteRequest ApplyDeleteRequest::decode(ByteReader& r) {
  ApplyDeleteRequest msg;
  msg.id = r.getU64();
  msg.values = r.getF64Vector();
  return msg;
}

void ApplyDeleteResponse::encode(ByteWriter& w) const {
  w.putBool(existed);
  w.putF64(prob);
  w.putU64(datasetVersion);
}

ApplyDeleteResponse ApplyDeleteResponse::decode(ByteReader& r) {
  ApplyDeleteResponse msg;
  msg.existed = r.getBool();
  msg.prob = r.getF64();
  msg.datasetVersion = r.getU64();
  return msg;
}

void RepairDeleteRequest::encode(ByteWriter& w) const {
  encodeTuple(w, deleted);
  w.putU32(origin);
  w.putF64(q);
  w.putU32(mask);
}

RepairDeleteRequest RepairDeleteRequest::decode(ByteReader& r) {
  RepairDeleteRequest msg;
  msg.deleted = decodeTuple(r);
  msg.origin = r.getU32();
  msg.q = r.getF64();
  msg.mask = r.getU32();
  return msg;
}

void FinishQueryRequest::encode(ByteWriter& w) const { w.putU64(query); }

FinishQueryRequest FinishQueryRequest::decode(ByteReader& r) {
  FinishQueryRequest msg;
  msg.query = r.getU64();
  return msg;
}

void FetchTraceRequest::encode(ByteWriter& w) const { w.putU64(query); }

FetchTraceRequest FetchTraceRequest::decode(ByteReader& r) {
  FetchTraceRequest msg;
  msg.query = r.getU64();
  return msg;
}

void FetchTraceResponse::encode(ByteWriter& w) const {
  encodeTraceBlock(w, trace);
}

FetchTraceResponse FetchTraceResponse::decode(ByteReader& r) {
  FetchTraceResponse msg;
  msg.trace = decodeTraceBlock(r);
  return msg;
}

void RepairDeleteResponse::encode(ByteWriter& w) const {
  w.putU32(static_cast<std::uint32_t>(candidates.size()));
  for (const Candidate& c : candidates) c.encode(w);
}

RepairDeleteResponse RepairDeleteResponse::decode(ByteReader& r) {
  RepairDeleteResponse msg;
  const std::uint32_t n = r.getU32();
  msg.candidates.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    msg.candidates.push_back(Candidate::decode(r));
  }
  return msg;
}

void ReplicaAddRequest::encode(ByteWriter& w) const {
  entry.encode(w);
  w.putF64(globalSkyProb);
}

ReplicaAddRequest ReplicaAddRequest::decode(ByteReader& r) {
  ReplicaAddRequest msg;
  msg.entry = Candidate::decode(r);
  msg.globalSkyProb = r.getF64();
  return msg;
}

void ReplicaRemoveRequest::encode(ByteWriter& w) const { w.putU64(id); }

ReplicaRemoveRequest ReplicaRemoveRequest::decode(ByteReader& r) {
  ReplicaRemoveRequest msg;
  msg.id = r.getU64();
  return msg;
}

void StreamTuplesRequest::encode(ByteWriter& w) const {
  w.putU32(partition);
  w.putU64(seq);
  w.putU32(static_cast<std::uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) encodeTuple(w, t);
}

StreamTuplesRequest StreamTuplesRequest::decode(ByteReader& r) {
  StreamTuplesRequest msg;
  msg.partition = r.getU32();
  msg.seq = r.getU64();
  const std::uint32_t n = r.getU32();
  // Server-decoded from untrusted frames: bound the reserve by what the
  // buffer could possibly hold (a tuple costs >= 20 bytes on the wire) so a
  // garbage count fails on the reader's bounds check, not on an allocation.
  msg.tuples.reserve(std::min<std::size_t>(n, r.remaining() / 20));
  for (std::uint32_t i = 0; i < n; ++i) msg.tuples.push_back(decodeTuple(r));
  return msg;
}

void StreamTuplesResponse::encode(ByteWriter& w) const { w.putU64(received); }

StreamTuplesResponse StreamTuplesResponse::decode(ByteReader& r) {
  StreamTuplesResponse msg;
  msg.received = r.getU64();
  return msg;
}

void JoinSiteRequest::encode(ByteWriter& w) const { w.putU64(epoch); }

JoinSiteRequest JoinSiteRequest::decode(ByteReader& r) {
  JoinSiteRequest msg;
  msg.epoch = r.getU64();
  return msg;
}

void JoinSiteResponse::encode(ByteWriter& w) const { w.putU64(size); }

JoinSiteResponse JoinSiteResponse::decode(ByteReader& r) {
  JoinSiteResponse msg;
  msg.size = r.getU64();
  return msg;
}

void LeaveSiteRequest::encode(ByteWriter& w) const { w.putU64(epoch); }

LeaveSiteRequest LeaveSiteRequest::decode(ByteReader& r) {
  LeaveSiteRequest msg;
  msg.epoch = r.getU64();
  return msg;
}

void LeaveSiteResponse::encode(ByteWriter& w) const { w.putU64(sessions); }

LeaveSiteResponse LeaveSiteResponse::decode(ByteReader& r) {
  LeaveSiteResponse msg;
  msg.sessions = r.getU64();
  return msg;
}

MsgType frameType(ByteReader& r) {
  return static_cast<MsgType>(r.getU8());
}

}  // namespace dsud
