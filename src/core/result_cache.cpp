#include "core/result_cache.hpp"

#include <algorithm>
#include <utility>

namespace dsud {

bool ResultCache::Key::operator==(const Key& other) const noexcept {
  if (datasetVersion != other.datasetVersion || epoch != other.epoch ||
      algo != other.algo || mask != other.mask || prune != other.prune ||
      bound != other.bound || expunge != other.expunge) {
    return false;
  }
  // Windows compare by value through SkylineSpec (null == null).
  const SkylineSpec mine{mask, 0.0, window ? &*window : nullptr};
  const SkylineSpec theirs{other.mask, 0.0,
                           other.window ? &*other.window : nullptr};
  return mine == theirs;
}

std::size_t ResultCache::KeyHash::operator()(const Key& key) const noexcept {
  // Reuse the SkylineSpec hash for the (mask, window) part, then mix in the
  // version and the run knobs.
  const SkylineSpec spec{key.mask, 0.0, key.window ? &*key.window : nullptr};
  std::size_t seed = std::hash<SkylineSpec>{}(spec);
  detail::hashCombine(seed, std::hash<std::uint64_t>{}(key.datasetVersion));
  detail::hashCombine(seed, std::hash<std::uint64_t>{}(key.epoch));
  detail::hashCombine(seed, static_cast<std::size_t>(key.algo));
  detail::hashCombine(seed, (static_cast<std::size_t>(key.prune) << 16) ^
                                (static_cast<std::size_t>(key.bound) << 8) ^
                                static_cast<std::size_t>(key.expunge));
  return seed;
}

ResultCache::ResultCache(ResultCacheConfig config,
                         obs::MetricsRegistry* metrics)
    : config_(config) {
  const std::size_t shards = std::max<std::size_t>(config_.shards, 1);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Per-shard budget, rounded up so capacity 1 still caches somewhere.
  perShardCapacity_ = (config_.capacity + shards - 1) / shards;
  if (metrics != nullptr) {
    hits_ = &metrics->counter("dsud_cache_hits_total");
    misses_ = &metrics->counter("dsud_cache_misses_total");
    insertions_ = &metrics->counter("dsud_cache_insertions_total");
    evictions_ = &metrics->counter("dsud_cache_evictions_total");
  }
}

std::optional<std::vector<GlobalSkylineEntry>> ResultCache::lookup(
    const Key& key, double q) {
  if (config_.capacity == 0) {
    if (misses_ != nullptr) misses_->inc();
    return std::nullopt;
  }
  Shard& shard = shardFor(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  // An answer computed at qBase enumerates exactly {t : P_gsky >= qBase};
  // it can only serve thresholds at least that loose.
  if (it == shard.index.end() || it->second->second.qBase > q) {
    if (misses_ != nullptr) misses_->inc();
    return std::nullopt;
  }
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  const Value& value = it->second->second;
  std::vector<GlobalSkylineEntry> filtered;
  filtered.reserve(value.entries.size());
  for (const GlobalSkylineEntry& e : value.entries) {
    if (e.globalSkyProb >= q) filtered.push_back(e);
  }
  if (hits_ != nullptr) hits_->inc();
  return filtered;
}

void ResultCache::insert(const Key& key, double qBase,
                         std::vector<GlobalSkylineEntry> entries) {
  if (config_.capacity == 0) return;
  Shard& shard = shardFor(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Keep whichever answer covers the wider band.
    if (it->second->second.qBase <= qBase) return;
    it->second->second = Value{qBase, std::move(entries)};
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  shard.order.emplace_front(key, Value{qBase, std::move(entries)});
  shard.index.emplace(key, shard.order.begin());
  if (insertions_ != nullptr) insertions_->inc();
  while (shard.order.size() > perShardCapacity_) {
    shard.index.erase(shard.order.back().first);
    shard.order.pop_back();
    if (evictions_ != nullptr) evictions_->inc();
  }
}

void ResultCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->order.clear();
    shard->index.clear();
  }
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->order.size();
  }
  return total;
}

}  // namespace dsud
