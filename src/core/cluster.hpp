// One-call construction of a complete in-process cluster: m LocalSites over
// a partitioned global database, wired to a Coordinator + QueryEngine
// through the in-process transport with a shared BandwidthMeter.  Each site
// gets a small channel pool, so concurrent query sessions broadcast to the
// same site without interleaving frames.  This is the harness used by
// tests, benches, and most examples; the TCP example wires the same pieces
// over sockets instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/dataset.hpp"
#include "core/coordinator.hpp"
#include "core/local_site.hpp"
#include "core/query_engine.hpp"
#include "net/chaos.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace dsud {

/// Everything configurable about a cluster, in one immutable bag.
struct ClusterConfig {
  PRTree::Options tree;
  /// Channel-pool capacities and socket options (the in-process cluster
  /// uses `transport.inprocChannelsPerSite`; the TCP wiring in
  /// examples/tcp_cluster.cpp consumes the rest).
  TransportConfig transport;
  /// Per-site circuit breakers shared by every query session.
  CircuitBreakerConfig breaker;
  /// When set, every channel is wrapped in a ChaosChannel driven by one
  /// shared per-site ChaosState — deterministic fault injection for tests
  /// and the chaos bench.
  std::optional<ChaosSpec> chaos;
  /// Replaces the cluster's own metrics registry (must then outlive the
  /// cluster).  Null keeps the internal registry.
  obs::MetricsRegistry* metrics = nullptr;
};

class InProcCluster {
 public:
  /// Partitions `global` uniformly onto `m` sites (paper Sec. 7) and builds
  /// the whole stack.  `seed` controls the partitioning only.  When
  /// `metrics` is non-null it replaces the cluster's own registry — the
  /// bench harness shares one registry across many clusters this way; it
  /// must then outlive the cluster.
  InProcCluster(const Dataset& global, std::size_t m, std::uint64_t seed,
                PRTree::Options treeOptions = {},
                obs::MetricsRegistry* metrics = nullptr);

  /// Builds from pre-partitioned local databases (site ids = positions).
  explicit InProcCluster(const std::vector<Dataset>& siteData,
                         PRTree::Options treeOptions = {},
                         obs::MetricsRegistry* metrics = nullptr);

  /// Fully configured construction (transport capacities, breakers, chaos).
  InProcCluster(const Dataset& global, std::size_t m, std::uint64_t seed,
                const ClusterConfig& config);
  InProcCluster(const std::vector<Dataset>& siteData,
                const ClusterConfig& config);

  InProcCluster(const InProcCluster&) = delete;
  InProcCluster& operator=(const InProcCluster&) = delete;

  Coordinator& coordinator() noexcept { return *coordinator_; }
  /// The query entry point: immutable per-query sessions, safe for any
  /// number of concurrent run*/submit* calls.
  QueryEngine& engine() noexcept { return *engine_; }
  BandwidthMeter& meter() noexcept { return meter_; }
  /// The registry every layer of this cluster reports into (the external
  /// one when provided at construction).
  obs::MetricsRegistry& metricsRegistry() noexcept { return *metrics_; }
  std::size_t siteCount() const noexcept { return sites_.size(); }
  LocalSite& localSite(std::size_t i) noexcept { return *sites_[i]; }
  std::size_t dims() const noexcept { return dims_; }

  /// Per-site chaos state when ClusterConfig::chaos is set (null otherwise)
  /// — lets tests inspect injected-fault counts and kill status.
  ChaosState* chaosState(std::size_t i) noexcept { return chaos_[i].get(); }

 private:
  void build(const std::vector<Dataset>& siteData, const ClusterConfig& config);

  std::size_t dims_ = 0;
  BandwidthMeter meter_;
  obs::MetricsRegistry ownMetrics_;
  obs::MetricsRegistry* metrics_ = &ownMetrics_;
  std::vector<std::unique_ptr<LocalSite>> sites_;
  std::vector<std::unique_ptr<SiteServer>> servers_;
  std::vector<std::shared_ptr<ChaosState>> chaos_;  // null entries w/o chaos
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryEngine> engine_;
};

}  // namespace dsud
