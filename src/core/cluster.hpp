// One-call construction of a complete in-process cluster from a Topology: a
// store (LocalSite + SiteServer + channel pool + RPC handle) for every
// replica of every partition, wired to a Coordinator + QueryEngine through
// the in-process transport with a shared BandwidthMeter.  This is the
// harness used by tests, benches, and most examples; the TCP example wires
// the same pieces over sockets instead.
//
// Elasticity: the cluster is the wiring layer of the dynamic-membership
// design (docs/ARCHITECTURE.md §13).  `addSite()` / `removeSite()` change
// the member set; `rebalance()` repartitions the database over the current
// members *in the background of the query path* — it gathers every
// partition (falling back to replicas when a host is unreachable), cuts the
// canonical global dataset with the deterministic STR partitioner, streams
// the cuts into fresh staging stores over kStreamTuples, seals them with
// kJoinSite, and atomically installs the next ClusterView.  In-flight query
// sessions pin the epoch they started on and finish against the old stores;
// only new sessions see the new layout.  With replicas >= 2 in the
// Topology, every query session fails over between a partition's stores
// with zero result loss (core/failover.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/dataset.hpp"
#include "core/coordinator.hpp"
#include "core/local_site.hpp"
#include "core/query_engine.hpp"
#include "core/topology.hpp"
#include "net/chaos.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace dsud {

/// Everything configurable about a cluster, in one immutable bag.
struct ClusterConfig {
  PRTree::Options tree;
  /// Channel-pool capacities and socket options (the in-process cluster
  /// uses `transport.inprocChannelsPerSite`; the TCP wiring in
  /// examples/tcp_cluster.cpp consumes the rest).
  TransportConfig transport;
  /// Per-member circuit breakers shared by every query session.
  CircuitBreakerConfig breaker;
  /// When set, every channel is wrapped in a ChaosChannel driven by one
  /// shared per-member ChaosState — deterministic fault injection for tests
  /// and the chaos bench.  Chaos is keyed by the *hosting* member, so
  /// killing a member fails all stores it hosts while the partitions'
  /// replicas on other members keep serving.
  std::optional<ChaosSpec> chaos;
  /// Replaces the cluster's own metrics registry (must then outlive the
  /// cluster).  Null keeps the internal registry.
  obs::MetricsRegistry* metrics = nullptr;
};

class InProcCluster {
 public:
  /// Builds the whole stack for `topology` (see Topology::uniform /
  /// Topology::fromPartitions).  The topology's seed data is consumed; its
  /// replica factor decides how many stores each partition gets.
  explicit InProcCluster(Topology topology, ClusterConfig config = {});

  InProcCluster(const InProcCluster&) = delete;
  InProcCluster& operator=(const InProcCluster&) = delete;

  Coordinator& coordinator() noexcept { return *coordinator_; }
  /// The query entry point: immutable per-query sessions, safe for any
  /// number of concurrent run*/submit* calls.
  QueryEngine& engine() noexcept { return *engine_; }
  BandwidthMeter& meter() noexcept { return meter_; }
  /// The registry every layer of this cluster reports into (the external
  /// one when provided at construction).
  obs::MetricsRegistry& metricsRegistry() noexcept { return *metrics_; }
  std::size_t dims() const noexcept { return dims_; }

  /// Partitions in the current layout (== member count).
  std::size_t siteCount() const;
  /// Store of partition `id` (`replica` 0 = primary); throws
  /// std::out_of_range for unknown ids.  SiteId-keyed on purpose: positions
  /// are not stable once sites join and leave.
  LocalSite& site(SiteId id, std::size_t replica = 0);
  /// Stores currently holding partition `id`.
  std::size_t replicaCount(SiteId id) const;

  /// Chaos state of the member `host` when ClusterConfig::chaos is set
  /// (null otherwise) — lets tests kill a member or inspect injected-fault
  /// counts.  States are stable across rebalances: a killed member stays
  /// killed in the next epoch.
  ChaosState* chaos(SiteId host);

  // --- Elastic membership ---------------------------------------------------

  /// Current topology (copy — safe against concurrent admin calls).
  Topology topology() const;
  /// Membership epoch of the current layout.
  std::uint64_t membershipEpoch() const { return coordinator_->membershipEpoch(); }

  /// Admits a new member and returns its id.  The member hosts no data (and
  /// serves no queries) until the next rebalance() spreads partitions onto
  /// it; the epoch bump alone already retires cached answers.
  SiteId addSite();

  /// Retires member `id`: gathers every partition it hosts (from the member
  /// itself, or from a replica when it is unreachable), removes it from the
  /// membership, and rebalances the database over the survivors.  Throws
  /// std::runtime_error when some partition's data is unrecoverable (every
  /// host unreachable) — the membership is then left unchanged.
  void removeSite(SiteId id);

  /// Repartitions the database over the current members (STR cuts of the
  /// canonical gathered dataset) and installs the next epoch.  Runs in the
  /// background of the query path: in-flight sessions finish on the layout
  /// they pinned, new sessions start on the new one, and nothing blocks in
  /// between.  Admin operations serialize against each other.
  void rebalance();

 private:
  /// One replica store: the site, its server, and the coordinator-facing
  /// RPC handle whose channel-pool factory keeps site + server alive for as
  /// long as any topology snapshot (or pinned session) references the
  /// handle.
  struct Store {
    std::shared_ptr<LocalSite> site;
    std::shared_ptr<SiteServer> server;
    std::shared_ptr<SiteHandle> handle;
    SiteId host = kNoSite;
  };

  Store wireStore(std::shared_ptr<LocalSite> site, SiteId host);
  std::shared_ptr<ChaosState> chaosFor(SiteId host);
  /// Publishes stores_ as the coordinator's current ClusterView (epoch =
  /// topology_.epoch()).
  void refreshView();
  /// Canonical global dataset: every partition read from its first
  /// reachable store, merged, sorted by tuple id.
  Dataset gather() const;
  /// STR-cuts `global` over the current members, streams the cuts into
  /// fresh staging stores, seals them, and installs the next epoch.
  void repartition(const Dataset& global);

  std::size_t dims_ = 0;
  BandwidthMeter meter_;
  obs::MetricsRegistry ownMetrics_;
  obs::MetricsRegistry* metrics_ = &ownMetrics_;
  ClusterConfig config_;

  /// Serializes admin operations (add/remove/rebalance) and guards
  /// topology_ / stores_ / chaos_.  Never taken by the query path.
  mutable std::mutex adminMutex_;
  Topology topology_;
  /// Stores of the current epoch by partition id ([0] = primary).  Retired
  /// epochs' stores live on through the shared_ptr chain view -> handle ->
  /// pool -> factory -> site/server until the last pinned session drops.
  std::map<SiteId, std::vector<Store>> stores_;
  std::unordered_map<SiteId, std::shared_ptr<ChaosState>> chaos_;

  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryEngine> engine_;
};

}  // namespace dsud
