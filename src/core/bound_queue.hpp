// Internal: the coordinator-side candidate queue with Observation-2 /
// Corollary-2 upper-bound tracking, shared by e-DSUD (Sec. 5.2) and the
// top-k extension.  Not part of the public API.
//
// Every candidate ever added is retained as a *witness*: for a later
// candidate s and a witness t ∈ D_x (x ≠ s's site) with t ≺ s,
//
//     P_sky(s, D_x) <= P_sky(t, D_x) / P(t) · (1 − P(t))      (Observation 2)
//
// and for a witness with exact global probability (a confirmed answer),
//
//     P_gsky(s) <= P(s) · P_gsky(t) / P(t) · (1 − P(t))       (Corollary 2)
//
// both stay valid forever (they are facts about the witness's database), so
// bounds only tighten over time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/protocol.hpp"

namespace dsud::internal {

/// Candidate queue with per-entry global-probability upper bounds.
class BoundQueue {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  BoundQueue(DimMask mask, FeedbackBound bound)
      : mask_(mask),
        useWitnesses_(bound != FeedbackBound::kNone),
        useConfirmed_(bound == FeedbackBound::kQueuedAndConfirmed) {}

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  const Candidate& candidate(std::size_t i) const { return entries_[i].c; }

  double upperBound(std::size_t i) const {
    const Entry& e = entries_[i];
    double ub = e.c.localSkyProb;
    for (const auto& [site, factor] : e.siteFactor) ub *= factor;
    return std::min(ub, e.confirmedCap);
  }

  /// Adds a candidate, applying all retained witnesses to it and it to the
  /// current entries.
  void add(Candidate c) {
    Entry entry;
    entry.c = std::move(c);
    if (useWitnesses_) {
      for (const Candidate& w : witnesses_) applyWitness(entry, w);
      for (Entry& other : entries_) applyWitness(other, entry.c);
    }
    if (useConfirmed_) {
      for (const Confirmed& w : confirmed_) applyConfirmed(entry, w);
    }
    witnesses_.push_back(entry.c);
    entries_.push_back(std::move(entry));
  }

  /// Index of the entry with the largest local skyline probability among
  /// those with upperBound >= threshold; npos when none qualifies.
  std::size_t selectQualified(double threshold) const {
    std::size_t best = npos;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (upperBound(i) < threshold) continue;
      if (best == npos ||
          entries_[i].c.localSkyProb > entries_[best].c.localSkyProb ||
          (entries_[i].c.localSkyProb == entries_[best].c.localSkyProb &&
           entries_[i].c.tuple.id < entries_[best].c.tuple.id)) {
        best = i;
      }
    }
    return best;
  }

  /// Index of any entry with upperBound < threshold; npos when none.
  std::size_t findExpungeable(double threshold) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (upperBound(i) < threshold) return i;
    }
    return npos;
  }

  /// Removes and returns entry i's candidate.
  Candidate take(std::size_t i) {
    Candidate c = std::move(entries_[i].c);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    return c;
  }

  /// Registers an exact global probability; tightens remaining entries.
  void confirm(const Tuple& tuple, double globalSkyProb) {
    if (!useConfirmed_) return;
    const Confirmed witness{tuple, globalSkyProb};
    for (Entry& e : entries_) applyConfirmed(e, witness);
    confirmed_.push_back(witness);
  }

 private:
  struct Entry {
    Candidate c;
    std::unordered_map<SiteId, double> siteFactor;  // min per external site
    double confirmedCap = 1.0;
  };
  struct Confirmed {
    Tuple tuple;
    double globalSkyProb;
  };

  static double witnessFactor(const Candidate& t) noexcept {
    return t.localSkyProb / t.tuple.prob * (1.0 - t.tuple.prob);
  }

  void applyWitness(Entry& entry, const Candidate& witness) const {
    if (witness.site == entry.c.site) return;
    if (!dominates(witness.tuple.values, entry.c.tuple.values, mask_)) return;
    const double factor = std::min(1.0, witnessFactor(witness));
    auto [it, inserted] = entry.siteFactor.emplace(witness.site, factor);
    if (!inserted) it->second = std::min(it->second, factor);
  }

  void applyConfirmed(Entry& entry, const Confirmed& witness) const {
    if (!dominates(witness.tuple.values, entry.c.tuple.values, mask_)) return;
    entry.confirmedCap = std::min(
        entry.confirmedCap, entry.c.tuple.prob * witness.globalSkyProb /
                                witness.tuple.prob *
                                (1.0 - witness.tuple.prob));
  }

  DimMask mask_;
  bool useWitnesses_;
  bool useConfirmed_;
  std::vector<Entry> entries_;
  std::vector<Candidate> witnesses_;
  std::vector<Confirmed> confirmed_;
};

}  // namespace dsud::internal
