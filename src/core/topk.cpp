// Top-k probabilistic skyline over distributed uncertain data.
//
// An extension in the spirit of the representative-skyline work the paper
// cites ([4]): instead of a fixed threshold q, report the k tuples with the
// largest global skyline probability.  The machinery is e-DSUD's — sorted
// To-Server access, Observation-2/Corollary-2 bounds, expunging — driven by
// an *adaptive* threshold τ: the k-th best confirmed probability so far
// (the floor `floorQ` until k candidates are confirmed).  τ only grows, so
// every expunge stays provably safe; when the queue drains, no unseen or
// expunged tuple can beat the k-th answer.
//
// Sites enumerate their local skylines down to floorQ, which bounds the
// search: the result is exact whenever at least k tuples have
// P_gsky >= floorQ (P_gsky <= local P_sky, Corollary 1, so nothing below
// the floor locally can reach it globally).
#include <algorithm>

#include "core/bound_queue.hpp"
#include "core/query_engine.hpp"
#include "core/query_run.hpp"

namespace dsud {

QueryResult QueryEngine::topkImpl(const TopKConfig& config,
                                  const QueryOptions& options, QueryId id) {
  if (config.k == 0) {
    throw std::invalid_argument("runTopK: k must be >= 1");
  }
  if (!(config.floorQ > 0.0) || config.floorQ > 1.0) {
    throw std::invalid_argument("runTopK: floorQ must be in (0, 1]");
  }

  internal::QueryRun run(*coord_, "topk", options, id);
  QueryStats& stats = run.result.stats;
  const DimMask mask = config.effectiveMask(coord_->dims());
  const PrepareRequest prep{run.id, config.floorQ, mask,
                            PruneRule::kThresholdBound, config.window};
  const NextCandidateRequest cursor{run.id};

  internal::BoundQueue queue(mask, FeedbackBound::kQueuedAndConfirmed);
  const auto pullFrom = [&](SiteId site) {
    if (auto next = run.pull(site, cursor, stats)) {
      queue.add(std::move(*next));
    }
  };

  {
    obs::TraceSpan prepare = run.span("prepare");
    run.prepareAll(prep);
    for (const auto& s : run.sessions) {
      pullFrom(s->siteId());
    }
  }

  // Current best-k, kept sorted descending by probability (k is small).
  std::vector<GlobalSkylineEntry> top;
  const auto threshold = [&]() {
    return top.size() < config.k ? config.floorQ
                                 : top.back().globalSkyProb;
  };

  while (!queue.empty()) {
    const auto round = run.roundScope();

    // Purge candidates from sites that died mid-query (see edsud.cpp).
    if (!run.dead.empty()) {
      for (std::size_t i = 0; i < queue.size();) {
        if (run.isDead(queue.candidate(i).site)) {
          queue.take(i);
        } else {
          ++i;
        }
      }
      if (queue.empty()) break;
    }

    // Expunge sweep against the adaptive threshold.
    for (std::size_t i = queue.findExpungeable(threshold());
         i != internal::BoundQueue::npos;
         i = queue.findExpungeable(threshold())) {
      const Candidate victim = queue.take(i);
      {
        obs::TraceSpan span = run.span("expunge");
        span.attr("site", victim.site);
        span.attr("tuple", static_cast<double>(victim.tuple.id));
      }
      run.countExpunge(stats);
      pullFrom(victim.site);
    }
    if (queue.empty()) break;

    // After the sweep every remaining entry has ub >= τ, so selection
    // cannot fail while the queue is nonempty (kept defensive).
    const std::size_t best = queue.selectQualified(threshold());
    if (best == internal::BoundQueue::npos) break;

    const Candidate c = queue.take(best);
    double globalSkyProb = 0.0;
    {
      obs::TraceSpan broadcast = run.span("broadcast");
      broadcast.attr("site", c.site);
      broadcast.attr("tuple", static_cast<double>(c.tuple.id));
      globalSkyProb =
          run.evaluateGlobally(c, /*pruneLocal=*/true, mask, config.window,
                               broadcast.id());
    }
    queue.confirm(c.tuple, globalSkyProb);

    // Admission: above the floor (the contract's universe) and either the
    // top list is not full yet or the candidate beats the current k-th.
    if (globalSkyProb >= config.floorQ &&
        (top.size() < config.k ||
         globalSkyProb > top.back().globalSkyProb)) {
      GlobalSkylineEntry entry;
      entry.site = c.site;
      entry.tuple = c.tuple;
      entry.localSkyProb = c.localSkyProb;
      entry.globalSkyProb = globalSkyProb;
      top.push_back(std::move(entry));
      std::sort(top.begin(), top.end(),
                [](const GlobalSkylineEntry& a, const GlobalSkylineEntry& b) {
                  if (a.globalSkyProb != b.globalSkyProb) {
                    return a.globalSkyProb > b.globalSkyProb;
                  }
                  return a.tuple.id < b.tuple.id;
                });
      if (top.size() > config.k) top.pop_back();
    }
    pullFrom(c.site);
  }

  run.result.skyline = std::move(top);
  // Top-k answers are not streamed through emit(); count them here.
  if (run.answers != nullptr) {
    run.answers->add(run.result.skyline.size());
  }
  return run.finalize();
}

}  // namespace dsud
