#include "core/query_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/stopwatch.hpp"
#include "core/batch.hpp"
#include "core/result_cache.hpp"
#include "obs/log.hpp"

namespace dsud {

bool shareEligible(Algo algo, const QueryConfig& config) noexcept {
  // kDominance feedback pruning is lossy and feedback-order dependent: what
  // a site drops depends on which candidates the coordinator broadcast,
  // which depends on q.  kThresholdBound only ever drops candidates whose
  // provable bound is below the session threshold, so a looser run's answer
  // stream is a superset of every tighter run's, in the same order.
  if (config.prune != PruneRule::kThresholdBound) return false;
  // e-DSUD's kPark stalls a site stream while its head is unqualified; how
  // long it stalls depends on q, so the emission order is not q-invariant.
  // kEager keeps every stream flowing and preserves the descending
  // local-probability order regardless of threshold.
  if (algo == Algo::kEdsud && config.expunge == ExpungePolicy::kPark) {
    return false;
  }
  return true;
}

QueryEngine::QueryEngine(Coordinator& coordinator, std::size_t workers)
    : coord_(&coordinator), workers_(workers) {}

QueryEngine::~QueryEngine() = default;

QueryResult QueryEngine::run(Algo algo, const QueryConfig& config,
                             const QueryOptions& options) {
  return dispatch(algo, config, options, coord_->nextQueryId());
}

QueryResult QueryEngine::runNaive(const QueryConfig& config,
                                  const QueryOptions& options) {
  return dispatch(Algo::kNaive, config, options, coord_->nextQueryId());
}

QueryResult QueryEngine::runDsud(const QueryConfig& config,
                                 const QueryOptions& options) {
  return dispatch(Algo::kDsud, config, options, coord_->nextQueryId());
}

QueryResult QueryEngine::runEdsud(const QueryConfig& config,
                                  const QueryOptions& options) {
  return dispatch(Algo::kEdsud, config, options, coord_->nextQueryId());
}

QueryResult QueryEngine::runTopK(const TopKConfig& config,
                                 const QueryOptions& options) {
  return topkImpl(config, options, coord_->nextQueryId());
}

QueryResult QueryEngine::run(Algo algo, const QueryConfig& config,
                             const QueryOptions& options, QueryId id) {
  return dispatch(algo, config, options, id);
}

QueryResult QueryEngine::runTopK(const TopKConfig& config,
                                 const QueryOptions& options, QueryId id) {
  return topkImpl(config, options, id);
}

QueryResult QueryEngine::execute(Algo algo, const QueryConfig& config,
                                 const QueryOptions& options, QueryId id) {
  switch (algo) {
    case Algo::kNaive:
      return naiveImpl(config, options, id);
    case Algo::kDsud:
      return dsudImpl(config, options, id);
    case Algo::kEdsud:
      return edsudImpl(config, options, id);
  }
  throw std::invalid_argument("QueryEngine: unknown algorithm");
}

QueryResult QueryEngine::dispatch(Algo algo, const QueryConfig& config,
                                  const QueryOptions& options, QueryId id) {
  ResultCache* cache = cache_;
  if (cache == nullptr || !shareEligible(algo, config)) {
    QueryResult result = execute(algo, config, options, id);
    result.profile.cache = "bypass";
    return result;
  }

  ResultCache::Key key;
  key.datasetVersion = coord_->datasetVersion();
  key.epoch = coord_->membershipEpoch();
  key.algo = algo;
  key.mask = config.effectiveMask(coord_->dims());
  key.prune = config.prune;
  key.bound = config.bound;
  key.expunge = config.expunge;
  key.window = config.window;

  if (auto hit = cache->lookup(key, config.q)) {
    obs::eventLog().emit(LogLevel::kInfo, "cache", "cache.hit",
                         {obs::field("query", id),
                          obs::field("algo", algoName(algo)),
                          obs::field("answers", hit->size())});
    QueryResult result = fromCache(std::move(*hit), options, id);
    result.profile.algo = algoName(algo);
    result.profile.cache = "hit";
    return result;
  }
  obs::eventLog().emit(LogLevel::kDebug, "cache", "cache.miss",
                       {obs::field("query", id),
                        obs::field("algo", algoName(algo))});
  QueryResult result = execute(algo, config, options, id);
  result.profile.cache = "miss";
  // Degraded answers describe a survivor subset, not the cluster; if
  // maintenance landed mid-run the answer may straddle two versions; and if
  // the membership epoch moved the answer belongs to a retired layout.
  // None of those is a safe verdict to replay.
  if (!result.degraded && coord_->datasetVersion() == key.datasetVersion &&
      coord_->membershipEpoch() == key.epoch) {
    cache->insert(key, config.q, result.skyline);
  }
  return result;
}

QueryResult QueryEngine::fromCache(std::vector<GlobalSkylineEntry> entries,
                                   const QueryOptions& options, QueryId id) {
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    throw QueryCancelled(id);
  }
  Stopwatch watch;
  obs::Tracer tracer(options.traceCapacity);
  const obs::SpanId span = tracer.begin("cache_hit");

  QueryResult result;
  result.id = id;
  result.skyline = std::move(entries);
  result.progress.reserve(result.skyline.size());
  for (std::size_t i = 0; i < result.skyline.size(); ++i) {
    // Replayed answers ship no tuples; the progress curve is flat at zero
    // bandwidth, which is exactly the cache's value proposition.
    ProgressPoint point;
    point.reported = i + 1;
    point.seconds = watch.elapsedSeconds();
    result.progress.push_back(point);
    if (options.progress) options.progress(result.skyline[i], point);
  }
  tracer.attr(span, "answers", static_cast<double>(result.skyline.size()));
  tracer.end(span);
  result.trace = tracer.take();
  result.stats.seconds = watch.elapsedSeconds();
  return result;
}

ThreadPool& QueryEngine::pool() {
  std::lock_guard lock(poolMutex_);
  if (pool_ == nullptr) {
    std::size_t workers = workers_;
    if (workers == 0) {
      workers = std::min<std::size_t>(
          std::max<std::size_t>(std::thread::hardware_concurrency(), 1), 8);
    }
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  return *pool_;
}

BatchExecutor& QueryEngine::batch() {
  pool();  // created first so member order tears the executor down first
  std::lock_guard lock(poolMutex_);
  if (batch_ == nullptr) {
    batch_ = std::make_unique<BatchExecutor>(*this, coord_->metrics());
  }
  return *batch_;
}

template <typename Fn>
QueryTicket QueryEngine::enqueue(QueryId id, Fn task) {
  inFlight_.fetch_add(1, std::memory_order_relaxed);
  std::future<QueryResult> future;
  try {
    future = pool().submit([this, task = std::move(task)]() mutable {
      try {
        QueryResult result = task();
        inFlight_.fetch_sub(1, std::memory_order_relaxed);
        return result;
      } catch (...) {
        inFlight_.fetch_sub(1, std::memory_order_relaxed);
        throw;
      }
    });
  } catch (...) {
    inFlight_.fetch_sub(1, std::memory_order_relaxed);
    throw;
  }
  return QueryTicket(id, std::move(future));
}

QueryTicket QueryEngine::submit(Algo algo, QueryConfig config,
                                QueryOptions options) {
  const QueryId id = coord_->nextQueryId();
  return enqueue(id, [this, algo, config = std::move(config),
                      options = std::move(options), id] {
    return dispatch(algo, config, options, id);
  });
}

QueryTicket QueryEngine::submitTopK(TopKConfig config, QueryOptions options) {
  const QueryId id = coord_->nextQueryId();
  return enqueue(id, [this, config = std::move(config),
                      options = std::move(options), id] {
    return topkImpl(config, options, id);
  });
}

QueryTicket QueryEngine::submitBatched(Algo algo, QueryConfig config,
                                       QueryOptions options) {
  return submitBatched(algo, std::move(config), std::move(options),
                       coord_->nextQueryId());
}

QueryTicket QueryEngine::submitBatched(Algo algo, QueryConfig config,
                                       QueryOptions options, QueryId id) {
  if (!options.batching.enabled || !shareEligible(algo, config)) {
    return enqueue(id, [this, algo, config = std::move(config),
                        options = std::move(options), id] {
      return dispatch(algo, config, options, id);
    });
  }
  return batch().submit(algo, std::move(config), std::move(options), id);
}

}  // namespace dsud
