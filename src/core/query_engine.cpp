#include "core/query_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace dsud {

QueryEngine::QueryEngine(Coordinator& coordinator, std::size_t workers)
    : coord_(&coordinator), workers_(workers) {}

QueryResult QueryEngine::run(Algo algo, const QueryConfig& config,
                             const QueryOptions& options) {
  switch (algo) {
    case Algo::kNaive:
      return naiveImpl(config, options, coord_->nextQueryId());
    case Algo::kDsud:
      return dsudImpl(config, options, coord_->nextQueryId());
    case Algo::kEdsud:
      return edsudImpl(config, options, coord_->nextQueryId());
  }
  throw std::invalid_argument("QueryEngine::run: unknown algorithm");
}

QueryResult QueryEngine::runNaive(const QueryConfig& config,
                                  const QueryOptions& options) {
  return naiveImpl(config, options, coord_->nextQueryId());
}

QueryResult QueryEngine::runDsud(const QueryConfig& config,
                                 const QueryOptions& options) {
  return dsudImpl(config, options, coord_->nextQueryId());
}

QueryResult QueryEngine::runEdsud(const QueryConfig& config,
                                  const QueryOptions& options) {
  return edsudImpl(config, options, coord_->nextQueryId());
}

QueryResult QueryEngine::runTopK(const TopKConfig& config,
                                 const QueryOptions& options) {
  return topkImpl(config, options, coord_->nextQueryId());
}

QueryResult QueryEngine::run(Algo algo, const QueryConfig& config,
                             const QueryOptions& options, QueryId id) {
  switch (algo) {
    case Algo::kNaive:
      return naiveImpl(config, options, id);
    case Algo::kDsud:
      return dsudImpl(config, options, id);
    case Algo::kEdsud:
      return edsudImpl(config, options, id);
  }
  throw std::invalid_argument("QueryEngine::run: unknown algorithm");
}

QueryResult QueryEngine::runTopK(const TopKConfig& config,
                                 const QueryOptions& options, QueryId id) {
  return topkImpl(config, options, id);
}

ThreadPool& QueryEngine::pool() {
  std::lock_guard lock(poolMutex_);
  if (pool_ == nullptr) {
    std::size_t workers = workers_;
    if (workers == 0) {
      workers = std::min<std::size_t>(
          std::max<std::size_t>(std::thread::hardware_concurrency(), 1), 8);
    }
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  return *pool_;
}

template <typename Fn>
QueryTicket QueryEngine::enqueue(QueryId id, Fn task) {
  inFlight_.fetch_add(1, std::memory_order_relaxed);
  std::future<QueryResult> future;
  try {
    future = pool().submit([this, task = std::move(task)]() mutable {
      try {
        QueryResult result = task();
        inFlight_.fetch_sub(1, std::memory_order_relaxed);
        return result;
      } catch (...) {
        inFlight_.fetch_sub(1, std::memory_order_relaxed);
        throw;
      }
    });
  } catch (...) {
    inFlight_.fetch_sub(1, std::memory_order_relaxed);
    throw;
  }
  return QueryTicket(id, std::move(future));
}

QueryTicket QueryEngine::submit(Algo algo, QueryConfig config,
                                QueryOptions options) {
  const QueryId id = coord_->nextQueryId();
  return enqueue(id, [this, algo, config = std::move(config),
                      options = std::move(options), id] {
    switch (algo) {
      case Algo::kNaive:
        return naiveImpl(config, options, id);
      case Algo::kDsud:
        return dsudImpl(config, options, id);
      case Algo::kEdsud:
        return edsudImpl(config, options, id);
    }
    throw std::invalid_argument("QueryEngine::submit: unknown algorithm");
  });
}

QueryTicket QueryEngine::submitTopK(TopKConfig config, QueryOptions options) {
  const QueryId id = coord_->nextQueryId();
  return enqueue(id, [this, config = std::move(config),
                      options = std::move(options), id] {
    return topkImpl(config, options, id);
  });
}

}  // namespace dsud
