#include "net/tcp_transport.hpp"

#include <stdexcept>

namespace dsud {

TcpSiteServer::TcpSiteServer(FrameHandler handler, std::uint16_t port)
    : handler_(std::move(handler)) {
  if (!handler_) throw std::invalid_argument("TcpSiteServer: null handler");
  listener_ = listenOn(port, &port_);
}

std::size_t TcpSiteServer::serve() {
  Socket conn = acceptFrom(listener_);
  std::size_t served = 0;
  while (!stopped_.load(std::memory_order_relaxed)) {
    Frame request;
    try {
      request = readFrame(conn);
    } catch (const NetError&) {
      break;  // peer disconnected: normal shutdown
    }
    writeFrame(conn, handler_(request));
    ++served;
  }
  return served;
}

}  // namespace dsud
