// Deterministic in-process transport.
//
// `call` serialises nothing away: the request frame is handed to the
// registered handler and its response frame returned, exactly as a socket
// round trip would, so byte counts and (de)serialisation behaviour are
// identical to the TCP transport — only latency and concurrency differ.
#pragma once

#include <chrono>
#include <stdexcept>
#include <utility>

#include "net/transport.hpp"
#include "net/wire.hpp"

namespace dsud {

/// Synchronous loopback channel: each call invokes the handler directly.
class InProcChannel final : public ClientChannel {
 public:
  explicit InProcChannel(FrameHandler handler)
      : handler_(std::move(handler)) {
    if (!handler_) {
      throw std::invalid_argument("InProcChannel: null handler");
    }
  }

  Frame call(const Frame& request) override {
    if (closed_) throw std::logic_error("InProcChannel: channel closed");
    // A synchronous handler cannot be preempted, so the deadline is honoured
    // post-hoc: a handler that overran it fails the call with NetTimeout,
    // exactly as the reply missing the deadline would over a socket.
    const auto start = std::chrono::steady_clock::now();
    Frame response = handler_(request);
    if (const auto deadline = this->deadline(); deadline.count() > 0 &&
        std::chrono::steady_clock::now() - start > deadline) {
      throw NetTimeout("inproc call: deadline exceeded");
    }
    // Loopback has no framing: on-wire bytes are exactly the payloads.
    accountFrames(request.size(), response.size(), 0, 0);
    return response;
  }

  void close() override { closed_ = true; }

 private:
  FrameHandler handler_;
  bool closed_ = false;
};

}  // namespace dsud
