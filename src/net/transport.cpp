#include "net/transport.hpp"

#include <string>

#include "net/bandwidth.hpp"

namespace dsud {

void ClientChannel::bindAccounting(SiteId site, BandwidthMeter* meter,
                                   obs::MetricsRegistry* metrics) {
  site_ = site;
  meter_ = meter;
  if (metrics != nullptr) {
    const std::string id = std::to_string(site);
    framesOut_ = &metrics->counter(
        obs::labeled("dsud_transport_frames_total", {{"site", id},
                                                     {"dir", "out"}}));
    framesIn_ = &metrics->counter(
        obs::labeled("dsud_transport_frames_total", {{"site", id},
                                                     {"dir", "in"}}));
    bytesOut_ = &metrics->counter(
        obs::labeled("dsud_transport_bytes_total", {{"site", id},
                                                    {"dir", "out"}}));
    bytesIn_ = &metrics->counter(
        obs::labeled("dsud_transport_bytes_total", {{"site", id},
                                                    {"dir", "in"}}));
  } else {
    framesOut_ = framesIn_ = bytesOut_ = bytesIn_ = nullptr;
  }
}

void ClientChannel::accountFrames(std::size_t payloadOut,
                                  std::size_t payloadIn,
                                  std::size_t overheadOut,
                                  std::size_t overheadIn) {
  if (overheadOut != 0 || overheadIn != 0) {
    if (meter_ != nullptr) meter_->recordOverhead(site_, overheadOut, overheadIn);
    if (scope_ != nullptr) scope_->recordOverhead(overheadOut + overheadIn);
  }
  if (framesOut_ != nullptr) {
    framesOut_->inc();
    framesIn_->inc();
    bytesOut_->add(payloadOut + overheadOut);
    bytesIn_->add(payloadIn + overheadIn);
  }
}

}  // namespace dsud
