// Bandwidth accounting (paper Sec. 3.2, goal 1).
//
// The paper measures bandwidth as the number of *tuples* transmitted over the
// network, explicitly excluding synchronisation messages and packet headers.
// The meter tracks that tuple count per link and in total, and additionally
// tracks raw bytes and message counts so byte-level comparisons are possible.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/dataset.hpp"

namespace dsud {

/// Per-link usage between the coordinator and one site.
struct LinkUsage {
  std::uint64_t tuplesToSite = 0;    ///< tuples in coordinator→site payloads
  std::uint64_t tuplesFromSite = 0;  ///< tuples in site→coordinator payloads
  std::uint64_t bytesToSite = 0;
  std::uint64_t bytesFromSite = 0;
  std::uint64_t calls = 0;  ///< request/response round trips
};

/// Aggregate view over all links.
struct UsageTotals {
  std::uint64_t tuples = 0;  ///< total tuples shipped, both directions
  std::uint64_t bytes = 0;
  std::uint64_t calls = 0;
};

/// Per-query usage scope: the session-confined slice of the accounting a
/// query's own RPCs generate.  Site handles opened with
/// `SiteHandle::openSession` record here *in addition to* the cluster-wide
/// BandwidthMeter, so per-query stats stay exact while N queries share the
/// links.
///
/// Thread-safety contract: all counters are relaxed atomics — any number of
/// broadcast workers may record concurrently, and `totals()` may be read at
/// any time (it is only guaranteed consistent once the query's RPCs are
/// done, which is when QueryRun reads it).
class QueryUsage {
 public:
  void recordCall(std::uint64_t requestBytes, std::uint64_t responseBytes) {
    bytes_.fetch_add(requestBytes + responseBytes, std::memory_order_relaxed);
    calls_.fetch_add(1, std::memory_order_relaxed);
  }
  void recordTuples(std::uint64_t n) {
    tuples_.fetch_add(n, std::memory_order_relaxed);
  }
  void recordOverhead(std::uint64_t bytes) {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  UsageTotals totals() const {
    UsageTotals t;
    t.tuples = tuples_.load(std::memory_order_relaxed);
    t.bytes = bytes_.load(std::memory_order_relaxed);
    t.calls = calls_.load(std::memory_order_relaxed);
    return t;
  }

 private:
  std::atomic<std::uint64_t> tuples_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> calls_{0};
};

/// Thread-safe usage accumulator shared by all channels of one cluster.
///
/// Thread-safety contract: every method is internally synchronised by one
/// mutex; any number of channels and readers may call concurrently.  Note
/// that under concurrent queries the *global* totals interleave — use a
/// QueryUsage scope (QueryStats) for per-query numbers.
class BandwidthMeter {
 public:
  explicit BandwidthMeter(std::size_t siteCount = 0);

  /// Grows the table to cover `site` if needed and returns its row.
  void recordCall(SiteId site, std::uint64_t requestBytes,
                  std::uint64_t responseBytes);
  void recordTuples(SiteId site, std::uint64_t toSite,
                    std::uint64_t fromSite);
  /// Transport-level framing overhead (length prefixes, ...): bytes that hit
  /// the wire beyond the payloads `recordCall` accounts.  Adds to the byte
  /// columns only — overhead is not a round trip.
  void recordOverhead(SiteId site, std::uint64_t toSite,
                      std::uint64_t fromSite);

  LinkUsage link(SiteId site) const;
  UsageTotals totals() const;

  /// Total tuples shipped (the paper's bandwidth metric).
  std::uint64_t tuplesShipped() const { return totals().tuples; }

  void reset();

 private:
  void ensureSiteLocked(SiteId site);

  mutable std::mutex mutex_;
  std::vector<LinkUsage> links_;
};

}  // namespace dsud
