// Bandwidth accounting (paper Sec. 3.2, goal 1).
//
// The paper measures bandwidth as the number of *tuples* transmitted over the
// network, explicitly excluding synchronisation messages and packet headers.
// The meter tracks that tuple count per link and in total, and additionally
// tracks raw bytes and message counts so byte-level comparisons are possible.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/dataset.hpp"

namespace dsud {

/// Per-link usage between the coordinator and one site.
struct LinkUsage {
  std::uint64_t tuplesToSite = 0;    ///< tuples in coordinator→site payloads
  std::uint64_t tuplesFromSite = 0;  ///< tuples in site→coordinator payloads
  std::uint64_t bytesToSite = 0;
  std::uint64_t bytesFromSite = 0;
  std::uint64_t calls = 0;  ///< request/response round trips
};

/// Aggregate view over all links.
struct UsageTotals {
  std::uint64_t tuples = 0;  ///< total tuples shipped, both directions
  std::uint64_t bytes = 0;
  std::uint64_t calls = 0;
};

/// Thread-safe usage accumulator shared by all channels of one cluster.
class BandwidthMeter {
 public:
  explicit BandwidthMeter(std::size_t siteCount = 0);

  /// Grows the table to cover `site` if needed and returns its row.
  void recordCall(SiteId site, std::uint64_t requestBytes,
                  std::uint64_t responseBytes);
  void recordTuples(SiteId site, std::uint64_t toSite,
                    std::uint64_t fromSite);
  /// Transport-level framing overhead (length prefixes, ...): bytes that hit
  /// the wire beyond the payloads `recordCall` accounts.  Adds to the byte
  /// columns only — overhead is not a round trip.
  void recordOverhead(SiteId site, std::uint64_t toSite,
                      std::uint64_t fromSite);

  LinkUsage link(SiteId site) const;
  UsageTotals totals() const;

  /// Total tuples shipped (the paper's bandwidth metric).
  std::uint64_t tuplesShipped() const { return totals().tuples; }

  void reset();

 private:
  void ensureSiteLocked(SiteId site);

  mutable std::mutex mutex_;
  std::vector<LinkUsage> links_;
};

}  // namespace dsud
