#include "net/chaos.hpp"

#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace dsud {

QueryId frameQueryId(const Frame& frame) noexcept {
  // MsgType byte + u64 session id, little-endian (core/protocol.hpp): the
  // session-bearing types are kPrepare=1, kNextCandidate=2, kEvaluate=3,
  // kFinishQuery=10.
  if (frame.size() < 9) return 0;
  const auto type = std::to_integer<std::uint8_t>(frame[0]);
  if (type != 1 && type != 2 && type != 3 && type != 10) return 0;
  QueryId id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<QueryId>(
              std::to_integer<std::uint8_t>(frame[1 + static_cast<std::size_t>(i)]))
          << (8 * i);
  }
  return id;
}

ChaosState::ChaosState(const ChaosSpec& spec, SiteId site)
    : spec_(spec),
      site_(site),
      active_(spec.onlySite == kNoSite || spec.onlySite == site),
      rng_(Rng(spec.seed).split(site)) {
  if (spec_.dropRate + spec_.errorRate + spec_.delayRate > 1.0) {
    throw std::invalid_argument("ChaosSpec: fault rates sum past 1.0");
  }
}

ChaosState::Fault ChaosState::next(QueryId query) {
  if (!active_) return Fault::kNone;
  std::lock_guard lock(mutex_);
  if (spec_.onlyQuery != 0 && query != spec_.onlyQuery) return Fault::kNone;
  if (killed_) return Fault::kKilled;
  ++matched_;
  if (spec_.killAfter != 0 && matched_ > spec_.killAfter) {
    killed_ = true;
    ++faults_;
    return Fault::kKilled;
  }
  // Exactly one uniform draw per matched call, so the fault sequence is a
  // pure function of (seed, site, matched-call index).
  const double u = rng_.uniform();
  Fault fault = Fault::kNone;
  if (u < spec_.dropRate) {
    fault = Fault::kDrop;
  } else if (u < spec_.dropRate + spec_.errorRate) {
    fault = Fault::kError;
  } else if (u < spec_.dropRate + spec_.errorRate + spec_.delayRate) {
    fault = Fault::kDelay;
  }
  if (fault != Fault::kNone) ++faults_;
  return fault;
}

bool ChaosState::killed() const {
  std::lock_guard lock(mutex_);
  return killed_;
}

std::uint64_t ChaosState::faultsInjected() const {
  std::lock_guard lock(mutex_);
  return faults_;
}

ChaosChannel::ChaosChannel(std::unique_ptr<ClientChannel> inner,
                           std::shared_ptr<ChaosState> state,
                           obs::MetricsRegistry* metrics)
    : inner_(std::move(inner)), state_(std::move(state)) {
  if (!inner_) throw std::invalid_argument("ChaosChannel: null inner channel");
  if (!state_) throw std::invalid_argument("ChaosChannel: null state");
  if (metrics != nullptr) {
    const std::string site = std::to_string(state_->site());
    const auto counter = [&](const char* kind) {
      return &metrics->counter(obs::labeled(
          "dsud_chaos_faults_total", {{"site", site}, {"kind", kind}}));
    };
    drops_ = counter("drop");
    errors_ = counter("error");
    delays_ = counter("delay");
    kills_ = counter("killed");
  }
}

Frame ChaosChannel::call(const Frame& request) {
  switch (state_->next(frameQueryId(request))) {
    case ChaosState::Fault::kNone:
      return inner_->call(request);
    case ChaosState::Fault::kKilled:
      if (kills_ != nullptr) kills_->inc();
      throw NetError("chaos: site " + std::to_string(state_->site()) +
                     " is dead");
    case ChaosState::Fault::kDrop:
      // Never delivered: indistinguishable from a lost request.
      if (drops_ != nullptr) drops_->inc();
      throw NetTimeout("chaos: request dropped");
    case ChaosState::Fault::kError:
      // Delivered, response lost: the site state HAS advanced — a retry
      // duplicates the delivery (the replay-cache test vector).
      if (errors_ != nullptr) errors_->inc();
      inner_->call(request);
      throw NetError("chaos: response lost");
    case ChaosState::Fault::kDelay: {
      if (delays_ != nullptr) delays_->inc();
      if (deadline().count() > 0) {
        // Slow site: the reply exists but missed the caller's deadline.
        inner_->call(request);
        throw NetTimeout("chaos: reply missed deadline");
      }
      if (state_->spec().delay.count() > 0) {
        std::this_thread::sleep_for(state_->spec().delay);
      }
      return inner_->call(request);
    }
  }
  throw std::logic_error("ChaosChannel: unreachable");
}

}  // namespace dsud
