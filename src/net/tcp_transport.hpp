// TCP implementations of the transport abstraction.
//
// A `TcpSiteServer` runs on the site side: it accepts one coordinator
// connection and serves request frames through the registered handler until
// the peer disconnects or `stop()` is called.  A `TcpClientChannel` is the
// coordinator endpoint.  Both speak the framing defined in wire.hpp, so the
// protocol layer is byte-identical to the in-process transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "net/transport.hpp"
#include "net/wire.hpp"

namespace dsud {

/// Coordinator-side TCP channel to one site.
class TcpClientChannel final : public ClientChannel {
 public:
  /// Connects to a site server on 127.0.0.1:`port`.  `options` controls
  /// TCP_NODELAY and the connect timeout; a per-call deadline set later via
  /// setDeadline maps onto SO_RCVTIMEO/SO_SNDTIMEO.
  explicit TcpClientChannel(std::uint16_t port, TcpSocketOptions options = {})
      : socket_(connectTo(port, options.connectTimeout, options.noDelay)) {}

  Frame call(const Frame& request) override {
    try {
      writeFrame(socket_, request);
      Frame response = readFrame(socket_);
      // Real sockets carry the u32 length prefix in each direction; without
      // this, bytesShipped undercounts by kFrameHeaderBytes per frame.
      accountFrames(request.size(), response.size(), kFrameHeaderBytes,
                    kFrameHeaderBytes);
      return response;
    } catch (const NetTimeout&) {
      // The stream is desynchronised (the late reply could be misread as a
      // later call's response); poison the connection so every further call
      // fails loudly instead of silently mixing frames.
      socket_.close();
      throw;
    }
  }

  void close() override { socket_.close(); }

 protected:
  void onDeadlineChanged() override { setSocketTimeouts(socket_, deadline()); }

 private:
  Socket socket_;
};

/// Site-side server: one listener, one coordinator connection.
class TcpSiteServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral).  Call `port()` for the bound
  /// port and `serve()` (typically on a dedicated thread) to start.
  explicit TcpSiteServer(FrameHandler handler, std::uint16_t port = 0);

  std::uint16_t port() const noexcept { return port_; }

  /// Accepts one connection and serves frames until the peer disconnects.
  /// Returns the number of requests served.
  std::size_t serve();

  /// Makes `serve` return after the in-flight request (by closing the
  /// listener; the peer disconnect ends the loop).
  void stop() noexcept { stopped_.store(true, std::memory_order_relaxed); }

 private:
  FrameHandler handler_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopped_{false};
};

}  // namespace dsud
