// POSIX socket RAII and length-prefixed framing for the TCP transport.
//
// Frame format on the wire: u32 little-endian payload length, then payload.
// Frames are capped at kMaxFrameBytes so a corrupt peer cannot trigger an
// unbounded allocation.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/transport.hpp"

namespace dsud {

/// Error for any socket-level failure (connect, accept, short read, ...).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A call (or connect) that exceeded its deadline.  Subtype of NetError so
/// existing "any transport failure" handling keeps working; retry layers
/// distinguish it for metrics.
class NetTimeout : public NetError {
 public:
  using NetError::NetError;
};

/// Largest accepted frame payload (64 MiB).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Bytes the framing itself puts on the wire per frame (the u32 length
/// prefix) — what transport-level byte accounting adds on top of payloads.
inline constexpr std::size_t kFrameHeaderBytes = sizeof(std::uint32_t);

/// Owning file-descriptor wrapper.  Move-only.
class Socket {
 public:
  Socket() noexcept = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Creates a listening IPv4 socket on 127.0.0.1:`port` (port 0 picks a free
/// port).  `boundPort`, when non-null, receives the actual port.
Socket listenOn(std::uint16_t port, std::uint16_t* boundPort = nullptr);

/// Blocking accept.
Socket acceptFrom(const Socket& listener);

/// Connect to 127.0.0.1:`port`.  A zero `timeout` blocks indefinitely;
/// otherwise the connect races a poll and throws NetTimeout on expiry.
/// `noDelay` controls TCP_NODELAY on the new socket.
Socket connectTo(std::uint16_t port,
                 std::chrono::milliseconds timeout = std::chrono::milliseconds{0},
                 bool noDelay = true);

/// Applies SO_RCVTIMEO/SO_SNDTIMEO to the socket (0 clears both).  Blocking
/// reads/writes past the timeout then surface as NetTimeout from
/// readFrame/writeFrame.
void setSocketTimeouts(const Socket& socket, std::chrono::milliseconds timeout);

/// Writes one length-prefixed frame; throws NetError on failure.
void writeFrame(const Socket& socket, const Frame& frame);

/// Reads one length-prefixed frame; throws NetError on failure or EOF.
Frame readFrame(const Socket& socket);

}  // namespace dsud
