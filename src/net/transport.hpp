// Transport abstraction between the coordinator and the local sites.
//
// The DSUD protocol is strictly request/response: every coordinator→site
// message receives exactly one reply.  A `ClientChannel` is the coordinator's
// endpoint of one such link.  Two implementations exist:
//
//   * InProcChannel  — deterministic, single-threaded loopback used by the
//                      benchmarks (the paper's metric, tuples shipped, is
//                      transport-independent);
//   * TcpClientChannel / TcpSiteServer — the same frames over real TCP
//                      sockets, used by `examples/tcp_cluster` and the
//                      transport integration tests.
//
// Frames are opaque byte vectors; the protocol layer (src/core/protocol.hpp)
// defines their contents.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"

namespace dsud {

class BandwidthMeter;
class QueryUsage;
using SiteId = std::uint32_t;  // = common/dataset.hpp's SiteId (checked there)

using Frame = std::vector<std::byte>;

/// Handler invoked on the site side for every incoming request frame;
/// returns the response frame.
using FrameHandler = std::function<Frame(const Frame&)>;

/// Coordinator-side endpoint of a channel to one site.
///
/// Channels own the *wire-level* accounting: after `bindAccounting`, every
/// `call` reports per-site frame and byte counters to the metrics registry
/// and its framing overhead (bytes on the wire beyond the payloads the RPC
/// stub already meters) to the BandwidthMeter.  Unbound channels account
/// nothing, preserving the zero-dependency construction the tests use.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  /// Sends one request and blocks until its response arrives.
  virtual Frame call(const Frame& request) = 0;

  /// Releases the underlying resources; further calls are invalid.
  virtual void close() {}

  /// Enables wire accounting for this channel's site.  Either sink may be
  /// null.  Call before the first `call`; not thread-safe against it.
  void bindAccounting(SiteId site, BandwidthMeter* meter,
                      obs::MetricsRegistry* metrics);

  /// Attributes this channel's framing overhead to a per-query usage scope
  /// (null detaches).  Thread-safety contract: a channel is used by one
  /// caller at a time (ChannelPool leases are exclusive), so set the scope
  /// while holding the lease, before `call`, and clear it before releasing.
  /// Virtual so decorators (net/chaos.hpp) can forward it to the channel
  /// that actually does the accounting.
  virtual void setUsageScope(QueryUsage* scope) noexcept { scope_ = scope; }

  /// Per-call deadline: a `call` issued after this takes effect must fail
  /// with NetTimeout instead of blocking past the deadline (0 = none, the
  /// default).  Same leasing contract as setUsageScope — set while holding
  /// the lease; the lease clears it on release.
  void setDeadline(std::chrono::milliseconds deadline) {
    if (deadline == deadline_) return;
    deadline_ = deadline;
    onDeadlineChanged();
  }
  std::chrono::milliseconds deadline() const noexcept { return deadline_; }

 protected:
  /// Implementations call this once per round trip with the payload sizes
  /// and the transport's own framing overhead in each direction.
  void accountFrames(std::size_t payloadOut, std::size_t payloadIn,
                     std::size_t overheadOut, std::size_t overheadIn);

  /// Hook invoked when setDeadline changes the deadline — e.g. the TCP
  /// channel pushes it into SO_RCVTIMEO/SO_SNDTIMEO, a decorator forwards
  /// it to its inner channel.
  virtual void onDeadlineChanged() {}

 private:
  SiteId site_ = 0;
  BandwidthMeter* meter_ = nullptr;
  QueryUsage* scope_ = nullptr;
  std::chrono::milliseconds deadline_{0};
  obs::Counter* framesOut_ = nullptr;
  obs::Counter* framesIn_ = nullptr;
  obs::Counter* bytesOut_ = nullptr;
  obs::Counter* bytesIn_ = nullptr;
};

/// Socket knobs of the TCP transport (TcpClientChannel / examples).
struct TcpSocketOptions {
  /// TCP_NODELAY on every connection — the request/response protocol sends
  /// one small frame per round trip, so Nagle costs tens of ms per RPC.
  bool noDelay = true;
  /// Bound on connect(2); 0 blocks indefinitely.  Expiry throws NetTimeout.
  std::chrono::milliseconds connectTimeout{0};
};

/// Transport sizing and socket knobs, carried on ClusterConfig so
/// deadline/retry/pool settings share one config surface.
struct TransportConfig {
  /// Channels per site for the in-process transport: enough that a handful
  /// of concurrent sessions rarely block on a lease, small enough to stay
  /// negligible per site.
  std::size_t inprocChannelsPerSite = 4;
  /// Channels per site over TCP.  TcpSiteServer accepts exactly one
  /// connection, so the compatible default is 1 (the pool then serialises
  /// all sessions on it).
  std::size_t tcpChannelsPerSite = 1;
  TcpSocketOptions socket;
};

}  // namespace dsud
