// Transport abstraction between the coordinator and the local sites.
//
// The DSUD protocol is strictly request/response: every coordinator→site
// message receives exactly one reply.  A `ClientChannel` is the coordinator's
// endpoint of one such link.  Two implementations exist:
//
//   * InProcChannel  — deterministic, single-threaded loopback used by the
//                      benchmarks (the paper's metric, tuples shipped, is
//                      transport-independent);
//   * TcpClientChannel / TcpSiteServer — the same frames over real TCP
//                      sockets, used by `examples/tcp_cluster` and the
//                      transport integration tests.
//
// Frames are opaque byte vectors; the protocol layer (src/core/protocol.hpp)
// defines their contents.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace dsud {

using Frame = std::vector<std::byte>;

/// Handler invoked on the site side for every incoming request frame;
/// returns the response frame.
using FrameHandler = std::function<Frame(const Frame&)>;

/// Coordinator-side endpoint of a channel to one site.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  /// Sends one request and blocks until its response arrives.
  virtual Frame call(const Frame& request) = 0;

  /// Releases the underlying resources; further calls are invalid.
  virtual void close() {}
};

}  // namespace dsud
