// InProcChannel is header-only; this translation unit exists so the target
// has a stable archive member for the class and to hold future out-of-line
// definitions.
#include "net/inproc_transport.hpp"
