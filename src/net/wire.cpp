#include "net/wire.hpp"
#include <algorithm>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dsud {
namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void writeAll(int fd, const std::byte* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // SO_SNDTIMEO expiry: the kernel reports the would-block errno.
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetTimeout("send: timed out");
      }
      throwErrno("send");
    }
    sent += static_cast<std::size_t>(rc);
  }
}

void readAll(int fd, std::byte* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd, data + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // SO_RCVTIMEO expiry: the kernel reports the would-block errno.
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetTimeout("recv: timed out");
      }
      throwErrno("recv");
    }
    if (rc == 0) throw NetError("recv: connection closed by peer");
    got += static_cast<std::size_t>(rc);
  }
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listenOn(std::uint16_t port, std::uint16_t* boundPort) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throwErrno("socket");

  const int enable = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throwErrno("bind");
  }
  if (::listen(sock.fd(), 64) != 0) throwErrno("listen");

  if (boundPort != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      throwErrno("getsockname");
    }
    *boundPort = ntohs(bound.sin_port);
  }
  return sock;
}

Socket acceptFrom(const Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      const int enable = 1;
      ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &enable,
                   sizeof(enable));
      return sock;
    }
    if (errno == EINTR) continue;
    throwErrno("accept");
  }
}

Socket connectTo(std::uint16_t port, std::chrono::milliseconds timeout,
                 bool noDelay) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throwErrno("socket");

  if (noDelay) {
    const int enable = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  if (timeout.count() <= 0) {
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      throwErrno("connect");
    }
    return sock;
  }

  // Bounded connect: non-blocking connect raced against poll.
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0) throwErrno("fcntl(F_GETFL)");
  if (::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
    throwErrno("fcntl(F_SETFL)");
  }
  const int rc =
      ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) throwErrno("connect");
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready < 0) throwErrno("poll");
    if (ready == 0) throw NetTimeout("connect: timed out");
    int soError = 0;
    socklen_t len = sizeof(soError);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &soError, &len) != 0) {
      throwErrno("getsockopt(SO_ERROR)");
    }
    if (soError != 0) {
      throw NetError(std::string("connect: ") + std::strerror(soError));
    }
  }
  if (::fcntl(sock.fd(), F_SETFL, flags) != 0) throwErrno("fcntl(F_SETFL)");
  return sock;
}

void setSocketTimeouts(const Socket& socket, std::chrono::milliseconds timeout) {
  timeval tv{};
  if (timeout.count() > 0) {
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  }
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void writeFrame(const Socket& socket, const Frame& frame) {
  if (frame.size() > kMaxFrameBytes) {
    throw NetError("writeFrame: frame exceeds kMaxFrameBytes");
  }
  // One buffer, one send: a separate 4-byte header write would interact
  // with Nagle + delayed ACK and cost tens of milliseconds per RPC.
  const auto n = static_cast<std::uint32_t>(frame.size());
  std::vector<std::byte> wire(4 + frame.size());
  for (int i = 0; i < 4; ++i) {
    wire[static_cast<std::size_t>(i)] =
        static_cast<std::byte>((n >> (8 * i)) & 0xff);
  }
  std::copy(frame.begin(), frame.end(), wire.begin() + 4);
  writeAll(socket.fd(), wire.data(), wire.size());
}

Frame readFrame(const Socket& socket) {
  std::byte header[4];
  readAll(socket.fd(), header, sizeof(header));
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(header[i]))
         << (8 * i);
  }
  if (n > kMaxFrameBytes) throw NetError("readFrame: oversized frame");
  Frame frame(n);
  if (n > 0) readAll(socket.fd(), frame.data(), n);
  return frame;
}

}  // namespace dsud
