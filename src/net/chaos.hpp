// Deterministic fault injection at the transport layer.
//
// `ChaosChannel` decorates any ClientChannel and injects faults drawn from a
// seeded RNG: dropped requests (NetTimeout, never delivered), lost responses
// (delivered, then NetError — the duplicate-delivery case idempotent replay
// exists for), slow replies, and a site that dies for good after its N-th
// call.  All channels to one site share one `ChaosState`, so the fault
// sequence depends only on the seed and the order of calls that *match* the
// spec — not on which pooled channel carried them — which is what makes
// chaos tests repeatable.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "common/dataset.hpp"  // SiteId / kNoSite
#include "common/rng.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace dsud {

using QueryId = std::uint64_t;  // = core/protocol.hpp's QueryId

/// What to inject, with what probability.  Rates are per matched call and
/// drawn in the listed order from one uniform sample, so a spec is a
/// partition of [0, 1).
struct ChaosSpec {
  /// Request vanishes: the site never sees it; the caller gets NetTimeout.
  double dropRate = 0.0;
  /// Response lost: the site processes the request, the caller gets
  /// NetError.  A retry therefore *duplicates* the delivery — the scenario
  /// the protocol's sequence-number replay exists for.
  double errorRate = 0.0;
  /// Slow reply: the call succeeds but, when a deadline is set on the
  /// channel, surfaces as NetTimeout after delivery (reply missed the
  /// deadline); without a deadline the reply is delayed by `delay`.
  double delayRate = 0.0;
  std::chrono::milliseconds delay{0};

  /// Site dies for good after this many matched calls succeeded (0 =
  /// never): every later call fails with NetError without delivery.
  std::uint32_t killAfter = 0;

  /// Restrict faults to frames of one query session (0 = all traffic).
  /// Frames without a session id (kShipAll, update maintenance) never match
  /// a nonzero onlyQuery.
  QueryId onlyQuery = 0;
  /// Restrict faults to one site (kNoSite = all sites); applied by whoever
  /// builds the per-site ChaosState (InProcCluster checks it in build()).
  SiteId onlySite = kNoSite;

  std::uint64_t seed = 0x5eed;
};

/// Session id carried by a query-protocol frame (kPrepare, kNextCandidate,
/// kEvaluate, kFinishQuery): the u64 right after the type byte.  Frames of
/// other types have no session and return kNoQuery.
QueryId frameQueryId(const Frame& frame) noexcept;

/// Shared per-site fault schedule.  Thread-safe; one instance backs every
/// pooled channel to the site so fault decisions are lease-independent.
class ChaosState {
 public:
  enum class Fault : std::uint8_t { kNone, kDrop, kError, kDelay, kKilled };

  /// `site` is the decorated site; a spec whose onlySite names a different
  /// site yields an inert state (every call passes through).
  ChaosState(const ChaosSpec& spec, SiteId site);

  /// Fault decision for the next call carrying `query`.  Non-matching calls
  /// (inert state, onlyQuery mismatch) never fault and consume no
  /// randomness.
  Fault next(QueryId query);

  const ChaosSpec& spec() const noexcept { return spec_; }
  SiteId site() const noexcept { return site_; }
  bool killed() const;
  std::uint64_t faultsInjected() const;

 private:
  ChaosSpec spec_;
  SiteId site_;
  bool active_;
  mutable std::mutex mutex_;
  Rng rng_;
  std::uint64_t matched_ = 0;
  std::uint64_t faults_ = 0;
  bool killed_ = false;
};

/// Transport decorator injecting the shared state's faults ahead of the
/// inner channel.  Accounting stays on the inner channel (the decorator
/// forwards the usage scope and deadline), so byte/tuple attribution is
/// identical to an un-decorated run when no fault fires.
class ChaosChannel final : public ClientChannel {
 public:
  /// `metrics` (nullable) receives dsud_chaos_faults_total{site,kind}.
  ChaosChannel(std::unique_ptr<ClientChannel> inner,
               std::shared_ptr<ChaosState> state,
               obs::MetricsRegistry* metrics = nullptr);

  Frame call(const Frame& request) override;
  void close() override { inner_->close(); }
  void setUsageScope(QueryUsage* scope) noexcept override {
    inner_->setUsageScope(scope);
  }

 protected:
  void onDeadlineChanged() override { inner_->setDeadline(deadline()); }

 private:
  std::unique_ptr<ClientChannel> inner_;
  std::shared_ptr<ChaosState> state_;
  obs::Counter* drops_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* delays_ = nullptr;
  obs::Counter* kills_ = nullptr;
};

}  // namespace dsud
