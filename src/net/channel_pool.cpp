#include "net/channel_pool.hpp"

#include <stdexcept>
#include <utility>

namespace dsud {

ChannelPool::ChannelPool(Factory factory, std::size_t capacity)
    : factory_(std::move(factory)), capacity_(capacity == 0 ? 1 : capacity) {
  if (!factory_) {
    throw std::invalid_argument("ChannelPool: null factory");
  }
}

ChannelPool::ChannelPool(std::unique_ptr<ClientChannel> channel)
    : capacity_(1) {
  if (channel == nullptr) {
    throw std::invalid_argument("ChannelPool: null channel");
  }
  idle_.push_back(channel.get());
  channels_.push_back(std::move(channel));
}

ChannelPool::~ChannelPool() {
  for (auto& channel : channels_) channel->close();
}

ChannelPool::Lease ChannelPool::acquire() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (!idle_.empty()) {
      ClientChannel* channel = idle_.back();
      idle_.pop_back();
      return Lease(this, channel);
    }
    if (channels_.size() < capacity_) {
      channels_.push_back(factory_());
      return Lease(this, channels_.back().get());
    }
    available_.wait(lock);
  }
}

void ChannelPool::put(ClientChannel* channel) {
  {
    std::lock_guard lock(mutex_);
    idle_.push_back(channel);
  }
  available_.notify_one();
}

void ChannelPool::Lease::release() {
  if (pool_ != nullptr && channel_ != nullptr) {
    channel_->setUsageScope(nullptr);
    channel_->setDeadline(std::chrono::milliseconds{0});
    pool_->put(channel_);
  }
  pool_ = nullptr;
  channel_ = nullptr;
}

}  // namespace dsud
