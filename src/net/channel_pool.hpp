// A small pool of ClientChannels to one site, so N concurrent queries can
// talk to the same site without interleaving frames on one connection.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.hpp"

namespace dsud {

/// Pool of channels to one site.
///
/// Channels are created lazily by the factory, up to `capacity`; once every
/// channel is out on lease, `acquire` blocks until one is returned.  A
/// capacity-1 pool therefore *serialises* all traffic on its single channel —
/// the correct mode for transports that only support one connection per site
/// (TcpSiteServer accepts exactly one).
///
/// Thread-safety contract: `acquire` and lease release are internally
/// synchronised; any number of query sessions may share one pool.  A leased
/// channel is exclusively owned until the lease is destroyed — callers may
/// freely `setUsageScope`/`call` on it without further locking.
class ChannelPool {
 public:
  using Factory = std::function<std::unique_ptr<ClientChannel>()>;

  /// Lazy pool: channels are made by `factory` on demand, at most `capacity`.
  ChannelPool(Factory factory, std::size_t capacity);

  /// Fixed pool over one pre-built channel (capacity 1).
  explicit ChannelPool(std::unique_ptr<ClientChannel> channel);

  ~ChannelPool();

  ChannelPool(const ChannelPool&) = delete;
  ChannelPool& operator=(const ChannelPool&) = delete;

  /// RAII lease of one channel; returns it to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ChannelPool* pool, ClientChannel* channel)
        : pool_(pool), channel_(channel) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), channel_(other.channel_) {
      other.pool_ = nullptr;
      other.channel_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        channel_ = other.channel_;
        other.pool_ = nullptr;
        other.channel_ = nullptr;
      }
      return *this;
    }
    ~Lease() { release(); }

    ClientChannel& operator*() const { return *channel_; }
    ClientChannel* operator->() const { return channel_; }
    explicit operator bool() const { return channel_ != nullptr; }

   private:
    void release();

    ChannelPool* pool_ = nullptr;
    ClientChannel* channel_ = nullptr;
  };

  /// Blocks until a channel is free (or can be created) and leases it.
  Lease acquire();

  std::size_t capacity() const { return capacity_; }

 private:
  friend class Lease;
  void put(ClientChannel* channel);

  Factory factory_;
  std::size_t capacity_ = 1;

  std::mutex mutex_;
  std::condition_variable available_;
  std::vector<std::unique_ptr<ClientChannel>> channels_;  // all ever created
  std::vector<ClientChannel*> idle_;
};

}  // namespace dsud
