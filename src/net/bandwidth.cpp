#include "net/bandwidth.hpp"

namespace dsud {

BandwidthMeter::BandwidthMeter(std::size_t siteCount) : links_(siteCount) {}

void BandwidthMeter::ensureSiteLocked(SiteId site) {
  if (site >= links_.size()) links_.resize(site + 1);
}

void BandwidthMeter::recordCall(SiteId site, std::uint64_t requestBytes,
                                std::uint64_t responseBytes) {
  std::lock_guard lock(mutex_);
  ensureSiteLocked(site);
  LinkUsage& l = links_[site];
  l.bytesToSite += requestBytes;
  l.bytesFromSite += responseBytes;
  ++l.calls;
}

void BandwidthMeter::recordTuples(SiteId site, std::uint64_t toSite,
                                  std::uint64_t fromSite) {
  std::lock_guard lock(mutex_);
  ensureSiteLocked(site);
  links_[site].tuplesToSite += toSite;
  links_[site].tuplesFromSite += fromSite;
}

void BandwidthMeter::recordOverhead(SiteId site, std::uint64_t toSite,
                                    std::uint64_t fromSite) {
  std::lock_guard lock(mutex_);
  ensureSiteLocked(site);
  links_[site].bytesToSite += toSite;
  links_[site].bytesFromSite += fromSite;
}

LinkUsage BandwidthMeter::link(SiteId site) const {
  std::lock_guard lock(mutex_);
  if (site >= links_.size()) return LinkUsage{};
  return links_[site];
}

UsageTotals BandwidthMeter::totals() const {
  std::lock_guard lock(mutex_);
  UsageTotals t;
  for (const LinkUsage& l : links_) {
    t.tuples += l.tuplesToSite + l.tuplesFromSite;
    t.bytes += l.bytesToSite + l.bytesFromSite;
    t.calls += l.calls;
  }
  return t;
}

void BandwidthMeter::reset() {
  std::lock_guard lock(mutex_);
  for (LinkUsage& l : links_) l = LinkUsage{};
}

}  // namespace dsud
