#include "net/fault.hpp"

#include <algorithm>
#include <cmath>

namespace dsud {

std::chrono::milliseconds RetryPolicy::backoff(std::uint32_t retry,
                                               Rng& rng) const {
  if (retry == 0) retry = 1;
  const double factor =
      std::pow(std::max(backoffMultiplier, 1.0), retry - 1);
  const double capped =
      std::min(static_cast<double>(initialBackoff.count()) * factor,
               static_cast<double>(maxBackoff.count()));
  const auto base = static_cast<std::int64_t>(capped);
  // Decile jitter: base + uniform{0..9}/10 of base.
  const auto jitter =
      base / 10 * static_cast<std::int64_t>(rng.below(10));
  return std::chrono::milliseconds{base + jitter};
}

SiteFailure::SiteFailure(SiteId site, std::uint32_t attempts,
                         const std::string& why)
    : NetError("site " + std::to_string(site) + " failed after " +
               std::to_string(attempts) + " attempt(s): " + why),
      site_(site),
      attempts_(attempts) {}

}  // namespace dsud
