// Fault-tolerance knobs of the coordinator→site RPC layer.
//
// Three cooperating mechanisms (docs/ARCHITECTURE.md §10):
//
//   * deadlines   — per-call bound enforced by the transport
//                   (ClientChannel::setDeadline); expiry is NetTimeout;
//   * RetryPolicy — bounded re-send with exponential backoff + decile
//                   jitter, applied per operation at the SiteHandle layer
//                   (safe because retried requests carry a sequence number
//                   the site uses for exactly-once replay);
//   * SiteFailure — what the retry layer throws once an operation exhausts
//                   its budget (or the site's circuit breaker is open):
//                   still a NetError, but carrying the site and attempt
//                   count so degraded-mode execution can exclude the site.
//
// Everything rides the immutable QueryOptions surface via FaultOptions;
// defaults preserve the pre-fault-tolerance behaviour exactly (no deadline,
// one attempt, fail the query).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "net/wire.hpp"

namespace dsud {

/// Bounded retry with exponential backoff.  The default (1 attempt) means
/// no retries at all — fault tolerance is strictly opt-in.
struct RetryPolicy {
  /// Total attempts per operation, first try included (>= 1).
  std::uint32_t maxAttempts = 1;
  /// Sleep before the first retry; doubles (backoffMultiplier) per further
  /// retry, capped at maxBackoff.  0 retries immediately.
  std::chrono::milliseconds initialBackoff{10};
  double backoffMultiplier = 2.0;
  std::chrono::milliseconds maxBackoff{1000};

  /// Backoff before retry number `retry` (1-based), with decile jitter: the
  /// base delay plus a uniformly drawn number of tenths of it, so synchronised
  /// retry storms from concurrent sessions spread out.  Deterministic given
  /// the RNG state.
  std::chrono::milliseconds backoff(std::uint32_t retry, Rng& rng) const;
};

/// What a query does when one site fails for good (retry budget exhausted
/// or breaker open).
enum class OnSiteFailure : std::uint8_t {
  kFail = 0,     ///< propagate the SiteFailure; the query throws
  kDegrade = 1,  ///< exclude the site and complete over the survivors
};

/// Per-query fault-tolerance options (immutable once the query starts),
/// carried on QueryOptions::fault.
struct FaultOptions {
  /// Per-call transport deadline; 0 = none.
  std::chrono::milliseconds deadline{0};
  RetryPolicy retry;
  OnSiteFailure onSiteFailure = OnSiteFailure::kFail;
};

/// One site is unreachable for good: every attempt the policy allowed has
/// failed, or the circuit breaker refused the operation outright.
class SiteFailure : public NetError {
 public:
  SiteFailure(SiteId site, std::uint32_t attempts, const std::string& why);

  SiteId site() const noexcept { return site_; }
  /// Attempts actually made (0 when the breaker rejected the operation).
  std::uint32_t attempts() const noexcept { return attempts_; }

 private:
  SiteId site_;
  std::uint32_t attempts_;
};

}  // namespace dsud
