// Synthetic NYSE-style stock-transaction trace (paper Sec. 7.4).
//
// The paper's real data set — 2M Dell trades from the New York Stock
// Exchange, 1/12/2000–22/5/2001, attributes ⟨average price per volume, total
// volume⟩ — is proprietary, so this module synthesises a statistically
// similar trace (documented substitution, DESIGN.md Sec. 5):
//
//   * price follows a mean-reverting random walk with intraday U-shaped
//     volatility and occasional regime jumps, quantised to cents;
//   * volume is lognormal (heavy-tailed) with intraday U-shape and round-lot
//     quantisation.
//
// A deal is "better" when it is cheaper AND larger, so the skyline direction
// on volume is maximisation; the generator stores the *negated* volume to fit
// the library's min-dominance convention.  The result has the same character
// as the real trace: strongly clustered 2-D data with a tiny skyline and a
// huge dominated mass.
#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "gen/probability.hpp"

namespace dsud {

struct NyseSpec {
  std::size_t n = 2'000'000;  ///< paper: 2M transactions
  std::uint64_t seed = 20001201;
  double initialPrice = 25.0;   ///< $ per share, Dell circa Dec 2000
  double meanReversion = 0.002;
  double baseVolatility = 0.03;
  std::size_t ticksPerDay = 390;  ///< one trade per minute, 6.5h session
};

/// Dimension 0: average price per share ($).  Dimension 1: negated volume
/// (shares), so Pareto-minimisation prefers cheap, large deals.
Dataset generateNyse(const NyseSpec& spec,
                     const ProbSampler& probs = uniformProbability());

}  // namespace dsud
