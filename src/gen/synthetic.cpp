#include "gen/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geometry/dominance.hpp"

namespace dsud {
namespace {

double truncatedNormal(Rng& rng, double mean, double stddev) {
  // Rejection keeps the shape of the bell inside [0, 1] (clamping would pile
  // mass on the borders and distort the skyline).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = rng.gaussian(mean, stddev);
    if (v >= 0.0 && v <= 1.0) return v;
  }
  return std::clamp(rng.gaussian(mean, stddev), 0.0, 1.0);
}

void sampleIndependent(std::size_t dims, Rng& rng, double* out) {
  for (std::size_t j = 0; j < dims; ++j) out[j] = rng.uniform();
}

void sampleCorrelated(std::size_t dims, Rng& rng, double* out) {
  // All attributes cluster around a common level v: cheap hotels tend to be
  // close to the beach too.
  const double v = truncatedNormal(rng, 0.5, 0.25);
  for (std::size_t j = 0; j < dims; ++j) {
    out[j] = std::clamp(v + rng.gaussian(0.0, 0.05), 0.0, 1.0);
  }
}

void sampleClustered(std::size_t dims, Rng& rng, double* out,
                     std::span<const double> centres) {
  // One of kClusterCount Gaussian blobs, sigma 0.05, rejected back into the
  // unit cube.
  const std::size_t cluster = rng.below(kClusterCount);
  for (std::size_t j = 0; j < dims; ++j) {
    const double centre = centres[cluster * dims + j];
    double v = rng.gaussian(centre, 0.05);
    for (int attempt = 0; (v < 0.0 || v > 1.0) && attempt < 16; ++attempt) {
      v = rng.gaussian(centre, 0.05);
    }
    out[j] = std::clamp(v, 0.0, 1.0);
  }
}

void sampleAnticorrelated(std::size_t dims, Rng& rng, double* out) {
  // Börzsönyi-style: pick a plane Σ x_j ≈ d·v, then shuffle mass between
  // dimension pairs, preserving the sum, so being good on one dimension
  // forces being bad on another.
  const double v = truncatedNormal(rng, 0.5, 0.0833);
  for (std::size_t j = 0; j < dims; ++j) out[j] = v;
  if (dims == 1) return;
  const std::size_t swaps = 2 * dims;
  for (std::size_t s = 0; s < swaps; ++s) {
    const auto i = static_cast<std::size_t>(rng.below(dims));
    auto j = static_cast<std::size_t>(rng.below(dims - 1));
    if (j >= i) ++j;
    // Largest transfer keeping both coordinates inside [0, 1].
    const double maxUp = std::min(1.0 - out[i], out[j]);
    const double maxDown = std::min(out[i], 1.0 - out[j]);
    const double delta = rng.uniform(-maxDown, maxUp);
    out[i] += delta;
    out[j] -= delta;
  }
}

}  // namespace

const char* distributionName(ValueDistribution dist) noexcept {
  switch (dist) {
    case ValueDistribution::kIndependent:
      return "independent";
    case ValueDistribution::kCorrelated:
      return "correlated";
    case ValueDistribution::kAnticorrelated:
      return "anticorrelated";
    case ValueDistribution::kClustered:
      return "clustered";
  }
  return "unknown";
}

void samplePoint(ValueDistribution dist, std::size_t dims, Rng& rng,
                 double* out) {
  switch (dist) {
    case ValueDistribution::kIndependent:
      sampleIndependent(dims, rng, out);
      return;
    case ValueDistribution::kCorrelated:
      sampleCorrelated(dims, rng, out);
      return;
    case ValueDistribution::kAnticorrelated:
      sampleAnticorrelated(dims, rng, out);
      return;
    case ValueDistribution::kClustered: {
      // Standalone calls derive fixed centres from a canonical stream so the
      // function stays self-contained; generateSynthetic seeds per spec.
      Rng centreRng(0xC1);
      std::vector<double> centres(kClusterCount * dims);
      for (double& c : centres) c = centreRng.uniform();
      sampleClustered(dims, rng, out, centres);
      return;
    }
  }
  throw std::invalid_argument("samplePoint: unknown distribution");
}

Dataset generateSynthetic(const SyntheticSpec& spec,
                          const ProbSampler& probs) {
  if (spec.dims == 0 || spec.dims > kMaxDims) {
    throw std::invalid_argument("generateSynthetic: dims out of range");
  }
  Dataset data(spec.dims);
  data.reserve(spec.n);
  Rng rng(spec.seed);
  Rng probRng = rng.split(0x70726f62);  // decorrelate values from probs
  std::vector<double> centres;
  if (spec.dist == ValueDistribution::kClustered) {
    Rng centreRng = rng.split(0x636c7573);
    centres.resize(kClusterCount * spec.dims);
    for (double& c : centres) c = centreRng.uniform();
  }
  std::array<double, kMaxDims> point{};
  for (std::size_t i = 0; i < spec.n; ++i) {
    if (spec.dist == ValueDistribution::kClustered) {
      sampleClustered(spec.dims, rng, point.data(), centres);
    } else {
      samplePoint(spec.dist, spec.dims, rng, point.data());
    }
    data.add(std::span<const double>(point.data(), spec.dims),
             probs(probRng));
  }
  return data;
}

}  // namespace dsud
