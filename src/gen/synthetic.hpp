// Synthetic value generators (paper Sec. 7, Fig. 7).
//
// The two distributions the paper evaluates follow Börzsönyi et al.'s classic
// skyline benchmark:
//
//   * Independent    — every attribute uniform on [0, 1], independently;
//   * Anticorrelated — points concentrated around the plane Σ_j x_j = d/2, so
//     a small value on one dimension implies large values elsewhere (many
//     skyline points);
//
// plus Correlated (small values on one dimension imply small values on the
// others; few skyline points) and Clustered (Gaussian blobs around random
// seeds, the workload of several of the paper's distributed-skyline
// references), which the paper does not sweep but which are useful for
// tests and ablations.
#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "common/rng.hpp"
#include "gen/probability.hpp"

namespace dsud {

enum class ValueDistribution {
  kIndependent,
  kCorrelated,
  kAnticorrelated,
  kClustered,
};

/// Human-readable name ("independent", ...).
const char* distributionName(ValueDistribution dist) noexcept;

struct SyntheticSpec {
  std::size_t n = 1000;
  std::size_t dims = 2;
  ValueDistribution dist = ValueDistribution::kIndependent;
  std::uint64_t seed = 1;
};

/// Generates `spec.n` uncertain tuples with sequential ids starting at 0 and
/// probabilities drawn from `probs` (default: the paper's uniform model).
Dataset generateSynthetic(const SyntheticSpec& spec,
                          const ProbSampler& probs = uniformProbability());

/// Draws one point of the given distribution into `out[0..dims)`.  The
/// clustered distribution additionally needs the cluster centres; use
/// `generateSynthetic` (which derives them from the spec's seed) unless you
/// are building a custom pipeline.
void samplePoint(ValueDistribution dist, std::size_t dims, Rng& rng,
                 double* out);

/// Number of Gaussian blobs the clustered distribution uses.
inline constexpr std::size_t kClusterCount = 10;

}  // namespace dsud
