#include "gen/nyse.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace dsud {

Dataset generateNyse(const NyseSpec& spec, const ProbSampler& probs) {
  Dataset data(2);
  data.reserve(spec.n);
  Rng rng(spec.seed);
  Rng probRng = rng.split(0x6e797365);

  double price = spec.initialPrice;
  const double pi = std::acos(-1.0);

  for (std::size_t i = 0; i < spec.n; ++i) {
    const double dayPhase =
        static_cast<double>(i % spec.ticksPerDay) /
        static_cast<double>(spec.ticksPerDay);
    // U-shaped intraday activity: busy open and close, quiet lunch.
    const double intraday = 1.0 + 0.8 * std::cos(2.0 * pi * dayPhase);

    // Mean-reverting log-price walk with rare regime jumps.
    const double vol = spec.baseVolatility * intraday;
    double step = rng.gaussian(0.0, vol) +
                  spec.meanReversion * (spec.initialPrice - price);
    if (rng.uniform() < 1e-4) step += rng.gaussian(0.0, 10.0 * vol);
    price = std::max(1.0, price + step);
    const double quotedPrice = std::round(price * 100.0) / 100.0;

    // Heavy-tailed lognormal volume in round lots of 100 shares.
    const double logVolume = rng.gaussian(6.0, 1.2) + 0.5 * intraday;
    const double volume =
        std::max(100.0, std::round(std::exp(logVolume) / 100.0) * 100.0);

    const std::array<double, 2> values = {quotedPrice, -volume};
    data.add(values, probs(probRng));
  }
  return data;
}

}  // namespace dsud
