// Horizontal partitioning of a global database onto m sites (paper Sec. 7):
// tuples are assigned to sites uniformly at random, all sites receive the
// same local cardinality |D_i| = N/m (±1 when m does not divide N), and the
// local samples are mutually disjoint.
#pragma once

#include <vector>

#include "common/dataset.hpp"
#include "common/rng.hpp"

namespace dsud {

/// Randomly deals the tuples of `global` into `m` disjoint local databases
/// of (near-)equal size.  Deterministic given `rng`'s state.
std::vector<Dataset> partitionUniform(const Dataset& global, std::size_t m,
                                      Rng& rng);

/// Range partitioning on one dimension: tuples sorted by `dimension` are cut
/// into m contiguous slices (the CAN-style spatial assignment of Wu et al.,
/// reviewed in the paper's Sec. 2.1).  The worst case for horizontal skyline
/// protocols — one site owns the entire preferred region — and therefore a
/// useful robustness workload (DSUD/e-DSUD make no uniformity assumption;
/// only their constants change).
std::vector<Dataset> partitionByRange(const Dataset& global, std::size_t m,
                                      std::size_t dimension);

/// Skewed random partitioning: site i receives tuples with probability
/// proportional to 1/(i+1)^theta (Zipf).  theta = 0 reduces to uniform
/// assignment with unequal-size noise; theta ~ 1 gives realistic hot-site
/// imbalance.  Sites may end up empty at extreme skew.
std::vector<Dataset> partitionZipf(const Dataset& global, std::size_t m,
                                   double theta, Rng& rng);

/// Sort-Tile-Recursive spatial partitioning: the same tiling the PR-tree's
/// bulk load uses, applied one level deep — tuples are sorted by dimension
/// 0 (ties by dimension 1, ..., then id), cut into ceil(sqrt(m)) vertical
/// slabs, and each slab is sorted by dimension 1 and cut again, yielding m
/// spatially coherent, (near-)equal-size partitions.  Fully deterministic:
/// no RNG, a pure function of (global, m) — which is what makes online
/// repartitioning reproducible (rebalancing onto m sites from any previous
/// layout lands every tuple in the same partition as a from-scratch build).
std::vector<Dataset> partitionSTR(const Dataset& global, std::size_t m);

}  // namespace dsud
