#include "gen/probability.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsud {

ProbSampler uniformProbability() {
  return [](Rng& rng) { return rng.existentialUniform(); };
}

ProbSampler gaussianProbability(double mean, double stddev) {
  return [mean, stddev](Rng& rng) {
    const double p = rng.gaussian(mean, stddev);
    return std::clamp(p, 1e-9, 1.0);
  };
}

ProbSampler constantProbability(double p) {
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("constantProbability: p must be in (0, 1]");
  }
  return [p](Rng&) { return p; };
}

}  // namespace dsud
