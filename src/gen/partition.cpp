#include "gen/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dsud {

std::vector<Dataset> partitionUniform(const Dataset& global, std::size_t m,
                                      Rng& rng) {
  if (m == 0) throw std::invalid_argument("partitionUniform: m must be >= 1");

  std::vector<std::size_t> order(global.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Fisher–Yates with the library RNG for determinism.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  std::vector<Dataset> sites;
  sites.reserve(m);
  for (std::size_t s = 0; s < m; ++s) {
    sites.emplace_back(global.dims());
    sites.back().reserve(global.size() / m + 1);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const TupleRef ref = global.at(order[i]);
    sites[i % m].add(ref.id, ref.values, ref.prob);
  }
  return sites;
}

std::vector<Dataset> partitionByRange(const Dataset& global, std::size_t m,
                                      std::size_t dimension) {
  if (m == 0) throw std::invalid_argument("partitionByRange: m must be >= 1");
  if (dimension >= global.dims()) {
    throw std::invalid_argument("partitionByRange: dimension out of range");
  }

  std::vector<std::size_t> order(global.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double va = global.values(a)[dimension];
    const double vb = global.values(b)[dimension];
    if (va != vb) return va < vb;
    return global.id(a) < global.id(b);  // deterministic tie-break
  });

  std::vector<Dataset> sites;
  sites.reserve(m);
  for (std::size_t s = 0; s < m; ++s) sites.emplace_back(global.dims());
  const std::size_t n = order.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t site = std::min(m - 1, i * m / std::max<std::size_t>(n, 1));
    const TupleRef ref = global.at(order[i]);
    sites[site].add(ref.id, ref.values, ref.prob);
  }
  return sites;
}

std::vector<Dataset> partitionSTR(const Dataset& global, std::size_t m) {
  if (m == 0) throw std::invalid_argument("partitionSTR: m must be >= 1");

  const std::size_t n = global.size();
  const std::size_t dims = global.dims();
  // Lexicographic comparison from `first`, wrapping through every dimension,
  // with the tuple id as the final deterministic tie-break.
  const auto lexLess = [&](std::size_t first) {
    return [&, first](std::size_t a, std::size_t b) {
      for (std::size_t k = 0; k < dims; ++k) {
        const std::size_t d = (first + k) % dims;
        const double va = global.values(a)[d];
        const double vb = global.values(b)[d];
        if (va != vb) return va < vb;
      }
      return global.id(a) < global.id(b);
    };
  };

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), lexLess(0));

  // ceil(sqrt(m)) slabs on dimension 0, then m tiles overall: slab s holds
  // the partitions [s * m / slabs, (s+1) * m / slabs) so every partition
  // index is used exactly once even when m is not a perfect square.
  const auto slabs = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(m))));

  std::vector<Dataset> parts;
  parts.reserve(m);
  for (std::size_t p = 0; p < m; ++p) parts.emplace_back(dims);

  for (std::size_t s = 0; s < slabs; ++s) {
    const std::size_t begin = s * n / slabs;
    const std::size_t end = (s + 1) * n / slabs;
    const std::size_t tileBegin = s * m / slabs;
    const std::size_t tileEnd = (s + 1) * m / slabs;
    const std::size_t tiles = tileEnd - tileBegin;
    if (begin >= end) continue;
    const std::size_t slabSize = end - begin;
    if (tiles == 0) {
      // More slabs than partitions left (tiny m): fold into the last tile.
      for (std::size_t i = begin; i < end; ++i) {
        const TupleRef ref = global.at(order[i]);
        parts[m - 1].add(ref.id, ref.values, ref.prob);
      }
      continue;
    }
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(begin),
              order.begin() + static_cast<std::ptrdiff_t>(end),
              lexLess(dims > 1 ? 1 : 0));
    for (std::size_t t = 0; t < tiles; ++t) {
      const std::size_t lo = begin + t * slabSize / tiles;
      const std::size_t hi = begin + (t + 1) * slabSize / tiles;
      for (std::size_t i = lo; i < hi; ++i) {
        const TupleRef ref = global.at(order[i]);
        parts[tileBegin + t].add(ref.id, ref.values, ref.prob);
      }
    }
  }
  return parts;
}

std::vector<Dataset> partitionZipf(const Dataset& global, std::size_t m,
                                   double theta, Rng& rng) {
  if (m == 0) throw std::invalid_argument("partitionZipf: m must be >= 1");
  if (theta < 0.0) {
    throw std::invalid_argument("partitionZipf: theta must be >= 0");
  }

  // Cumulative site weights w_i ∝ 1/(i+1)^theta.
  std::vector<double> cumulative(m);
  double total = 0.0;
  for (std::size_t s = 0; s < m; ++s) {
    total += 1.0 / std::pow(static_cast<double>(s + 1), theta);
    cumulative[s] = total;
  }

  std::vector<Dataset> sites;
  sites.reserve(m);
  for (std::size_t s = 0; s < m; ++s) sites.emplace_back(global.dims());
  for (std::size_t row = 0; row < global.size(); ++row) {
    const double u = rng.uniform() * total;
    const std::size_t site = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const TupleRef ref = global.at(row);
    sites[std::min(site, m - 1)].add(ref.id, ref.values, ref.prob);
  }
  return sites;
}

}  // namespace dsud
