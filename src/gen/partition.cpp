#include "gen/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dsud {

std::vector<Dataset> partitionUniform(const Dataset& global, std::size_t m,
                                      Rng& rng) {
  if (m == 0) throw std::invalid_argument("partitionUniform: m must be >= 1");

  std::vector<std::size_t> order(global.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Fisher–Yates with the library RNG for determinism.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  std::vector<Dataset> sites;
  sites.reserve(m);
  for (std::size_t s = 0; s < m; ++s) {
    sites.emplace_back(global.dims());
    sites.back().reserve(global.size() / m + 1);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    const TupleRef ref = global.at(order[i]);
    sites[i % m].add(ref.id, ref.values, ref.prob);
  }
  return sites;
}

std::vector<Dataset> partitionByRange(const Dataset& global, std::size_t m,
                                      std::size_t dimension) {
  if (m == 0) throw std::invalid_argument("partitionByRange: m must be >= 1");
  if (dimension >= global.dims()) {
    throw std::invalid_argument("partitionByRange: dimension out of range");
  }

  std::vector<std::size_t> order(global.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double va = global.values(a)[dimension];
    const double vb = global.values(b)[dimension];
    if (va != vb) return va < vb;
    return global.id(a) < global.id(b);  // deterministic tie-break
  });

  std::vector<Dataset> sites;
  sites.reserve(m);
  for (std::size_t s = 0; s < m; ++s) sites.emplace_back(global.dims());
  const std::size_t n = order.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t site = std::min(m - 1, i * m / std::max<std::size_t>(n, 1));
    const TupleRef ref = global.at(order[i]);
    sites[site].add(ref.id, ref.values, ref.prob);
  }
  return sites;
}

std::vector<Dataset> partitionZipf(const Dataset& global, std::size_t m,
                                   double theta, Rng& rng) {
  if (m == 0) throw std::invalid_argument("partitionZipf: m must be >= 1");
  if (theta < 0.0) {
    throw std::invalid_argument("partitionZipf: theta must be >= 0");
  }

  // Cumulative site weights w_i ∝ 1/(i+1)^theta.
  std::vector<double> cumulative(m);
  double total = 0.0;
  for (std::size_t s = 0; s < m; ++s) {
    total += 1.0 / std::pow(static_cast<double>(s + 1), theta);
    cumulative[s] = total;
  }

  std::vector<Dataset> sites;
  sites.reserve(m);
  for (std::size_t s = 0; s < m; ++s) sites.emplace_back(global.dims());
  for (std::size_t row = 0; row < global.size(); ++row) {
    const double u = rng.uniform() * total;
    const std::size_t site = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const TupleRef ref = global.at(row);
    sites[std::min(site, m - 1)].add(ref.id, ref.values, ref.prob);
  }
  return sites;
}

}  // namespace dsud
