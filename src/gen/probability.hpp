// Existential-probability assignment (paper Sec. 7, "Data set").
//
// The paper makes tuples uncertain by randomly assigning each an occurrence
// probability, either uniform on (0, 1] (synthetic + NYSE default) or
// Gaussian with mean μ ∈ [0.3, 0.9] and σ = 0.2 (NYSE, Figs. 11c/11d, 13).
#pragma once

#include <functional>

#include "common/rng.hpp"

namespace dsud {

/// Draws one existential probability.
using ProbSampler = std::function<double(Rng&)>;

/// P ~ U(0, 1].
ProbSampler uniformProbability();

/// P ~ N(mean, stddev) clamped into (0, 1].  The paper's NYSE Gaussian
/// setting (μ from 0.3 to 0.9, σ = 0.2).
ProbSampler gaussianProbability(double mean, double stddev);

/// Constant probability (useful for reducing to the certain-data case:
/// P ≡ 1 makes the probabilistic skyline coincide with the classic skyline).
ProbSampler constantProbability(double p);

}  // namespace dsud
