#include "server/http.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "server/connection.hpp"

namespace dsud::server {

namespace {

/// Headers may not exceed this; a probe or scraper never comes close.
constexpr std::size_t kMaxRequestBytes = 16u << 10;

}  // namespace

std::string makeHttpResponse(int status, std::string_view reason,
                             std::string_view contentType,
                             std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += contentType;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

HttpConnection::HttpConnection(std::uint64_t id, Socket socket)
    : id_(id), socket_(std::move(socket)) {
  setNonBlocking(socket_.fd());
}

HttpConnection::IoResult HttpConnection::onReadable(const Handler& handler) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      if (responded_) continue;  // drain and ignore anything after request 1
      request_.append(chunk, static_cast<std::size_t>(n));
      if (request_.size() > kMaxRequestBytes) return IoResult::kClosed;

      const std::size_t headerEnd = request_.find("\r\n\r\n") !=
                                            std::string::npos
                                        ? request_.find("\r\n\r\n")
                                        : request_.find("\n\n");
      if (headerEnd == std::string::npos) continue;

      // Request line: METHOD SP PATH SP VERSION
      std::string_view line(request_);
      line = line.substr(0, line.find_first_of("\r\n"));
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        response_ = makeHttpResponse(400, "Bad Request", "text/plain",
                                     "bad request\n");
      } else {
        const std::string_view method = line.substr(0, sp1);
        std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        path = path.substr(0, path.find('?'));
        response_ = handler(method, path);
      }
      responded_ = true;
      return flush();
    }
    if (n == 0) return IoResult::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    return IoResult::kClosed;
  }
}

HttpConnection::IoResult HttpConnection::onWritable() { return flush(); }

HttpConnection::IoResult HttpConnection::flush() {
  while (offset_ < response_.size()) {
    const ssize_t n = ::send(socket_.fd(), response_.data() + offset_,
                             response_.size() - offset_, MSG_NOSIGNAL);
    if (n > 0) {
      offset_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoResult::kOk;  // EPOLLOUT will resume the flush
    }
    if (n < 0 && errno == EINTR) continue;
    return IoResult::kClosed;
  }
  // Fully flushed: the one-shot exchange is over.
  return responded_ ? IoResult::kClosed : IoResult::kOk;
}

}  // namespace dsud::server
