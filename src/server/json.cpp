#include "server/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dsud::server {

namespace {

/// Hostile-input bound: a document nested deeper than this is rejected
/// before the recursion can exhaust the stack.
constexpr std::size_t kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what + " at offset " + std::to_string(pos));
  }

  bool atEnd() const noexcept { return pos >= text.size(); }
  char peek() const noexcept { return text[pos]; }

  void skipWs() {
    while (!atEnd()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  void expect(char c) {
    if (atEnd() || text[pos] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume(char c) {
    if (!atEnd() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  Json parseValue(std::size_t depth) {
    if (depth > kMaxDepth) fail("document too deeply nested");
    skipWs();
    if (atEnd()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{':
        return parseObject(depth);
      case '[':
        return parseArray(depth);
      case '"':
        return Json(parseString());
      case 't':
        if (consumeWord("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consumeWord("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consumeWord("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parseNumber();
    }
  }

  Json parseObject(std::size_t depth) {
    expect('{');
    Json::Object members;
    skipWs();
    if (consume('}')) return Json(std::move(members));
    while (true) {
      skipWs();
      if (atEnd() || peek() != '"') fail("expected object key");
      std::string key = parseString();
      skipWs();
      expect(':');
      members.emplace_back(std::move(key), parseValue(depth + 1));
      skipWs();
      if (consume(',')) continue;
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parseArray(std::size_t depth) {
    expect('[');
    Json::Array items;
    skipWs();
    if (consume(']')) return Json(std::move(items));
    while (true) {
      items.push_back(parseValue(depth + 1));
      skipWs();
      if (consume(',')) continue;
      expect(']');
      return Json(std::move(items));
    }
  }

  /// JSON number grammar checked by hand (strtod alone would admit "nan",
  /// "inf", hex floats, and leading '+'), then converted with strtod so the
  /// value matches what the writer's %.17g round-trips.
  Json parseNumber() {
    const std::size_t start = pos;
    consume('-');
    if (atEnd() || !isDigit(peek())) fail("invalid number");
    if (!consume('0')) {
      while (!atEnd() && isDigit(peek())) ++pos;
    }
    if (consume('.')) {
      if (atEnd() || !isDigit(peek())) fail("invalid number");
      while (!atEnd() && isDigit(peek())) ++pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos;
      if (atEnd() || !isDigit(peek())) fail("invalid number");
      while (!atEnd() && isDigit(peek())) ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (!std::isfinite(value)) fail("number out of range");
    return Json(value);
  }

  static bool isDigit(char c) noexcept { return c >= '0' && c <= '9'; }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (atEnd()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        break;
      }
      if (c == '\\') {
        ++pos;
        if (atEnd()) fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': appendEscapedCodepoint(out); break;
          default: fail("invalid escape");
        }
        continue;
      }
      if (c < 0x20) fail("unescaped control character");
      out += static_cast<char>(c);
      ++pos;
    }
    if (!isValidUtf8(out)) fail("invalid UTF-8 in string");
    return out;
  }

  std::uint32_t parseHex4() {
    if (pos + 4 > text.size()) fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return v;
  }

  /// \uXXXX after the backslash-u was consumed; handles surrogate pairs.
  void appendEscapedCodepoint(std::string& out) {
    std::uint32_t cp = parseHex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (!consumeWord("\\u")) fail("unpaired surrogate");
      const std::uint32_t low = parseHex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    appendUtf8(out, cp);
  }

  static void appendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }
};

void appendNumber(std::string& out, double v) {
  // Integral doubles in the exactly-representable range print as integers:
  // tuple ids and counts stay readable, and strtod parses them back to the
  // identical double.
  if (v == std::floor(v) && std::abs(v) <= 9007199254740992.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

bool isValidUtf8(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    std::size_t extra;
    std::uint32_t cp;
    if (c < 0x80) {
      ++i;
      continue;
    } else if ((c & 0xE0) == 0xC0) {
      extra = 1;
      cp = c & 0x1F;
    } else if ((c & 0xF0) == 0xE0) {
      extra = 2;
      cp = c & 0x0F;
    } else if ((c & 0xF8) == 0xF0) {
      extra = 3;
      cp = c & 0x07;
    } else {
      return false;
    }
    if (i + extra + 1 > text.size()) return false;  // truncated sequence
    for (std::size_t j = 1; j <= extra; ++j) {
      const unsigned char cc = static_cast<unsigned char>(text[i + j]);
      if ((cc & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (cc & 0x3F);
    }
    // Overlong forms, surrogates, and beyond-Unicode are all invalid.
    static constexpr std::uint32_t kMin[4] = {0, 0x80, 0x800, 0x10000};
    if (cp < kMin[extra]) return false;
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;
    if (cp > 0x10FFFF) return false;
    i += extra + 1;
  }
  return true;
}

void appendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (const char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

const Json* Json::find(std::string_view key) const noexcept {
  const Object* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) return nullptr;
  for (const Member& m : *obj) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  if (Object* obj = std::get_if<Object>(&value_)) {
    obj->emplace_back(std::move(key), std::move(value));
    return *this;
  }
  throw JsonError("set() on a non-object");
}

Json& Json::push(Json value) {
  if (Array* arr = std::get_if<Array>(&value_)) {
    arr->push_back(std::move(value));
    return *this;
  }
  throw JsonError("push() on a non-array");
}

void Json::dumpTo(std::string& out) const {
  if (isNull()) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    appendNumber(out, *d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    appendJsonString(out, *s);
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    out += '[';
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i > 0) out += ',';
      (*a)[i].dumpTo(out);
    }
    out += ']';
  } else {
    const Object& o = std::get<Object>(value_);
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i > 0) out += ',';
      appendJsonString(out, o[i].first);
      out += ':';
      o[i].second.dumpTo(out);
    }
    out += '}';
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out);
  return out;
}

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json value = p.parseValue(0);
  p.skipWs();
  if (!p.atEnd()) p.fail("trailing content after document");
  return value;
}

}  // namespace dsud::server
