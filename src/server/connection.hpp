// Per-client connection state machine for the dsudd daemon.
//
// A Connection owns one accepted socket (switched to non-blocking) and the
// two buffers around it: the input buffer that reassembles '\n'-terminated
// request lines, and the outbox that absorbs response lines faster than the
// peer drains them.  It knows nothing about JSON or queries — the server
// feeds it events and consumes complete lines.
//
// Two protective behaviours:
//
//   * Oversized lines — when the input buffer exceeds the line cap without
//     a newline, the oversize handler fires once (the server answers with
//     an `oversized` error) and every byte up to and including the next
//     '\n' is discarded, so the connection resynchronises cleanly instead
//     of dying or buffering without bound.
//   * Outbox cap — a peer that stops reading while streaming a large
//     result would otherwise grow the outbox indefinitely; past the cap,
//     send() reports failure and the server closes the connection.
//
// The connection also tracks cancellation tokens of its in-flight queries
// (client id -> shared flag); closing the connection flips every token so
// abandoned queries abort at their next round boundary.
//
// Thread-safety contract: everything here runs on the event-loop thread.
// Worker threads only ever touch the shared_ptr<atomic<bool>> tokens.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "net/wire.hpp"

namespace dsud::server {

/// Puts `fd` into non-blocking mode; throws NetError on failure.
void setNonBlocking(int fd);

class Connection {
 public:
  /// Invoked once per complete request line (without its '\n').
  using LineHandler = std::function<void(std::string_view line)>;
  /// Invoked once when a line exceeds the cap (resync is automatic).
  using OversizeHandler = std::function<void()>;

  /// Takes ownership of `socket` and switches it to non-blocking.
  Connection(std::uint64_t id, Socket socket, std::size_t maxLineBytes,
             std::size_t maxOutboxBytes);

  std::uint64_t id() const noexcept { return id_; }
  int fd() const noexcept { return socket_.fd(); }

  void setLineHandler(LineHandler handler) { onLine_ = std::move(handler); }
  void setOversizeHandler(OversizeHandler handler) {
    onOversize_ = std::move(handler);
  }

  enum class IoResult : std::uint8_t {
    kOk,      ///< connection still healthy
    kClosed,  ///< peer EOF, fatal error, or outbox overflow — drop it
  };

  /// Reads until EAGAIN, dispatching every complete line.
  IoResult onReadable();

  /// Flushes as much of the outbox as the socket accepts.
  IoResult onWritable();

  /// Queues `line` (a '\n' is appended) and flushes opportunistically.
  /// Returns kClosed when the outbox exceeded its cap — the peer is not
  /// keeping up and the server should drop the connection.
  IoResult send(std::string_view line);

  /// True while the outbox holds unflushed bytes (caller arms EPOLLOUT).
  bool wantsWrite() const noexcept { return !outbox_.empty(); }

  // --- Deferred teardown ----------------------------------------------------
  //
  // send() can report kClosed from inside this connection's own
  // onReadable() frame (line handler -> server sendLine -> send), so the
  // server must never destroy the Connection right there.  Instead it marks
  // the connection defunct — onReadable() stops dispatching lines and
  // returns — and posts the actual erase to run after the IO callback has
  // unwound.

  bool defunct() const noexcept { return defunct_; }
  void markDefunct() noexcept { defunct_ = true; }

  // --- In-flight query tokens ---------------------------------------------

  /// Registers a query under its client-chosen id and returns its fresh
  /// cancellation token; null when the id is already active (duplicate).
  std::shared_ptr<std::atomic<bool>> registerQuery(const std::string& clientId);

  /// Token for an active query, or null.
  std::shared_ptr<std::atomic<bool>> findQuery(const std::string& clientId) const;

  /// Drops the registration (the token itself stays alive with the query).
  void unregisterQuery(const std::string& clientId);

  /// Flips every active token (connection going away).
  void cancelAll();

  std::size_t activeQueries() const noexcept { return queries_.size(); }

 private:
  std::uint64_t id_;
  Socket socket_;
  std::size_t maxLineBytes_;
  std::size_t maxOutboxBytes_;
  LineHandler onLine_;
  OversizeHandler onOversize_;

  std::string inbox_;
  bool defunct_ = false;
  bool skippingOversized_ = false;
  std::string outbox_;
  std::size_t outboxOffset_ = 0;  ///< bytes of outbox_ already written

  std::map<std::string, std::shared_ptr<std::atomic<bool>>> queries_;
};

}  // namespace dsud::server
