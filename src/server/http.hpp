// Minimal HTTP/1.1 responder for the daemon's /metrics and /healthz
// endpoints.
//
// This is deliberately not a web server: every request is answered with
// `Connection: close` and the socket shut down once the response drains,
// which is exactly the lifecycle of a Prometheus scrape or a health probe.
// Only the request line is interpreted (method + path); headers are read to
// the blank line and discarded.  Runs on the event-loop thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "net/wire.hpp"

namespace dsud::server {

/// Serialises one full HTTP/1.1 response (status line, minimal headers with
/// Content-Length and Connection: close, body).
std::string makeHttpResponse(int status, std::string_view reason,
                             std::string_view contentType,
                             std::string_view body);

class HttpConnection {
 public:
  /// Maps a request to the full response byte string.  `method` is the
  /// verb from the request line; `path` excludes any query string.
  using Handler =
      std::function<std::string(std::string_view method, std::string_view path)>;

  HttpConnection(std::uint64_t id, Socket socket);

  std::uint64_t id() const noexcept { return id_; }
  int fd() const noexcept { return socket_.fd(); }

  enum class IoResult : std::uint8_t { kOk, kClosed };

  /// Accumulates request bytes; once the header block is complete, invokes
  /// `handler` and starts flushing its response.
  IoResult onReadable(const Handler& handler);

  /// Continues flushing the response.  Returns kClosed once it is fully
  /// written (the connection's job is done) or on error.
  IoResult onWritable();

  bool wantsWrite() const noexcept { return !response_.empty(); }

 private:
  IoResult flush();

  std::uint64_t id_;
  Socket socket_;
  std::string request_;
  std::string response_;
  std::size_t offset_ = 0;
  bool responded_ = false;
};

}  // namespace dsud::server
