#include "server/proto.hpp"

#include <cmath>
#include <limits>

namespace dsud::server {

namespace {

/// Caps on client-chosen strings so a hostile request cannot balloon the
/// server's per-query bookkeeping.
constexpr std::size_t kMaxIdBytes = 128;
constexpr std::size_t kMaxTenantBytes = 64;

[[noreturn]] void bad(const std::string& message) {
  throw ProtoError(ErrorCode::kBadRequest, message);
}

// --- Field accessors -------------------------------------------------------
//
// Every accessor validates kind and range and names the field in its error,
// so a client sees `q must be a number in [0, 1]`, not a JSON stack trace.
// Unknown fields are deliberately never rejected.

const Json& require(const Json& obj, std::string_view key) {
  const Json* v = obj.find(key);
  if (v == nullptr) bad("missing required field '" + std::string(key) + "'");
  return *v;
}

std::string getString(const Json& obj, std::string_view key,
                      std::string fallback, std::size_t maxBytes) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->isString()) bad("'" + std::string(key) + "' must be a string");
  if (v->asString().size() > maxBytes) {
    bad("'" + std::string(key) + "' exceeds " + std::to_string(maxBytes) +
        " bytes");
  }
  return v->asString();
}

double getNumber(const Json& obj, std::string_view key, double fallback,
                 double lo, double hi) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->isNumber()) bad("'" + std::string(key) + "' must be a number");
  const double d = v->asNumber();
  if (d < lo || d > hi) {
    bad("'" + std::string(key) + "' out of range [" + std::to_string(lo) +
        ", " + std::to_string(hi) + "]");
  }
  return d;
}

std::uint64_t getUint(const Json& obj, std::string_view key,
                      std::uint64_t fallback, std::uint64_t hi) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->isNumber()) bad("'" + std::string(key) + "' must be a number");
  const double d = v->asNumber();
  // Order matters: static_cast<double>(hi) rounds UINT64_MAX up to 2^64, so
  // a plain `d > (double)hi` would accept exactly 18446744073709551616 and
  // make the cast below undefined.  Rejecting everything >= 2^64 first keeps
  // the cast defined; the final compare then runs exactly, in integer space.
  if (d < 0 || d != std::floor(d) || d >= std::ldexp(1.0, 64) ||
      static_cast<std::uint64_t>(d) > hi) {
    bad("'" + std::string(key) + "' must be an integer in [0, " +
        std::to_string(hi) + "]");
  }
  return static_cast<std::uint64_t>(d);
}

bool getBool(const Json& obj, std::string_view key, bool fallback) {
  const Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->isBool()) bad("'" + std::string(key) + "' must be a boolean");
  return v->asBool();
}

Algo algoFromName(const std::string& name) {
  if (name == "edsud") return Algo::kEdsud;
  if (name == "dsud") return Algo::kDsud;
  if (name == "naive") return Algo::kNaive;
  bad("unknown algo '" + name + "' (expected edsud|dsud|naive)");
}

Priority priorityFromJson(const Json& obj) {
  const Json* v = obj.find("priority");
  if (v == nullptr) return Priority::kNormal;
  if (!v->isString()) bad("'priority' must be \"high\"|\"normal\"|\"low\"");
  const std::string& s = v->asString();
  if (s == "high") return Priority::kHigh;
  if (s == "normal") return Priority::kNormal;
  if (s == "low") return Priority::kLow;
  bad("unknown priority '" + s + "' (expected high|normal|low)");
}

std::optional<Rect> windowFromJson(const Json& obj) {
  const Json* v = obj.find("window");
  if (v == nullptr || v->isNull()) return std::nullopt;
  if (!v->isObject()) bad("'window' must be an object {lo:[...], hi:[...]}");
  const Json& lo = require(*v, "lo");
  const Json& hi = require(*v, "hi");
  if (!lo.isArray() || !hi.isArray() ||
      lo.asArray().size() != hi.asArray().size() || lo.asArray().empty()) {
    bad("'window' lo/hi must be equal-length non-empty arrays");
  }
  Rect rect;
  try {
    rect = Rect(lo.asArray().size());
  } catch (const std::invalid_argument& e) {
    bad(std::string("'window': ") + e.what());
  }
  std::vector<double> corner(lo.asArray().size());
  for (std::size_t j = 0; j < corner.size(); ++j) {
    if (!lo.asArray()[j].isNumber()) bad("'window' lo must hold numbers");
    corner[j] = lo.asArray()[j].asNumber();
  }
  rect.expand(corner);
  for (std::size_t j = 0; j < corner.size(); ++j) {
    if (!hi.asArray()[j].isNumber()) bad("'window' hi must hold numbers");
    const double h = hi.asArray()[j].asNumber();
    if (h < rect.lo(j)) bad("'window' needs lo <= hi per dimension");
    corner[j] = h;
  }
  rect.expand(corner);
  return rect;
}

Json windowToJson(const Rect& rect) {
  Json lo = Json::array();
  Json hi = Json::array();
  for (std::size_t j = 0; j < rect.dims(); ++j) {
    lo.push(rect.lo(j));
    hi.push(rect.hi(j));
  }
  Json out = Json::object();
  out.set("lo", std::move(lo));
  out.set("hi", std::move(hi));
  return out;
}

Json tupleToJson(const Tuple& t) {
  Json values = Json::array();
  for (const double v : t.values) values.push(v);
  Json out = Json::object();
  out.set("id", t.id);
  out.set("prob", t.prob);
  out.set("values", std::move(values));
  return out;
}

Tuple tupleFromJson(const Json& v) {
  if (!v.isObject()) bad("'tuple' must be an object");
  Tuple t;
  t.id = getUint(v, "id", 0, std::numeric_limits<std::uint64_t>::max());
  t.prob = getNumber(v, "prob", 0.0, 0.0, 1.0);
  const Json& values = require(v, "values");
  if (!values.isArray()) bad("'tuple.values' must be an array");
  t.values.reserve(values.asArray().size());
  for (const Json& x : values.asArray()) {
    if (!x.isNumber()) bad("'tuple.values' must hold numbers");
    t.values.push_back(x.asNumber());
  }
  return t;
}

AdminAction adminActionFromName(const std::string& name) {
  if (name == "add-site") return AdminAction::kAddSite;
  if (name == "remove-site") return AdminAction::kRemoveSite;
  if (name == "rebalance") return AdminAction::kRebalance;
  if (name == "topology") return AdminAction::kTopology;
  bad("unknown action '" + name +
      "' (expected add-site|remove-site|rebalance|topology)");
}

Json partitionToJson(const PartitionDesc& partition) {
  Json hosts = Json::array();
  for (const SiteId host : partition.hosts) {
    hosts.push(static_cast<std::uint64_t>(host));
  }
  Json out = Json::object();
  out.set("id", static_cast<std::uint64_t>(partition.id));
  out.set("hosts", std::move(hosts));
  return out;
}

PartitionDesc partitionFromJson(const Json& v) {
  if (!v.isObject()) bad("'partitions' must hold objects");
  PartitionDesc partition;
  partition.id = static_cast<SiteId>(
      getUint(v, "id", 0, std::numeric_limits<SiteId>::max()));
  const Json& hosts = require(v, "hosts");
  if (!hosts.isArray()) bad("'partitions[].hosts' must be an array");
  for (const Json& host : hosts.asArray()) {
    if (!host.isNumber()) bad("'partitions[].hosts' must hold site ids");
    partition.hosts.push_back(static_cast<SiteId>(host.asNumber()));
  }
  return partition;
}

Json profileToJson(const QueryProfile& profile) {
  Json phases = Json::object();
  phases.set("prepare_s", profile.prepareSeconds);
  phases.set("execute_s", profile.executeSeconds);
  phases.set("finalize_s", profile.finalizeSeconds);
  Json sites = Json::array();
  for (const SiteProfile& s : profile.sites) {
    Json site = Json::object();
    site.set("site", static_cast<std::uint64_t>(s.site));
    site.set("rounds", s.rounds);
    site.set("tuples", s.tuples);
    site.set("bytes", s.bytes);
    site.set("candidates", s.candidates);
    site.set("pruned", s.pruned);
    site.set("retries", s.retries);
    site.set("failovers", s.failovers);
    site.set("dead", s.dead);
    sites.push(std::move(site));
  }
  Json out = Json::object();
  out.set("algo", profile.algo);
  out.set("cache", profile.cache);
  out.set("batch", profile.batch);
  out.set("batch_width", profile.batchWidth);
  out.set("failovers", profile.failovers);
  out.set("phases", std::move(phases));
  out.set("sites", std::move(sites));
  return out;
}

QueryProfile profileFromJson(const Json& v) {
  if (!v.isObject()) bad("'profile' must be an object");
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  constexpr double kMaxD = std::numeric_limits<double>::max();
  QueryProfile profile;
  profile.algo = getString(v, "algo", "", 16);
  profile.cache = getString(v, "cache", "bypass", 16);
  profile.batch = getString(v, "batch", "solo", 16);
  profile.batchWidth = getUint(v, "batch_width", 1, kMax);
  profile.failovers = getUint(v, "failovers", 0, kMax);
  if (const Json* phases = v.find("phases"); phases != nullptr) {
    if (!phases->isObject()) bad("'profile.phases' must be an object");
    profile.prepareSeconds = getNumber(*phases, "prepare_s", 0.0, 0.0, kMaxD);
    profile.executeSeconds = getNumber(*phases, "execute_s", 0.0, 0.0, kMaxD);
    profile.finalizeSeconds =
        getNumber(*phases, "finalize_s", 0.0, 0.0, kMaxD);
  }
  if (const Json* sites = v.find("sites"); sites != nullptr) {
    if (!sites->isArray()) bad("'profile.sites' must be an array");
    for (const Json& s : sites->asArray()) {
      if (!s.isObject()) bad("'profile.sites' must hold objects");
      SiteProfile site;
      site.site = static_cast<SiteId>(
          getUint(s, "site", 0, std::numeric_limits<SiteId>::max()));
      site.rounds = getUint(s, "rounds", 0, kMax);
      site.tuples = getUint(s, "tuples", 0, kMax);
      site.bytes = getUint(s, "bytes", 0, kMax);
      site.candidates = getUint(s, "candidates", 0, kMax);
      site.pruned = getUint(s, "pruned", 0, kMax);
      site.retries = getUint(s, "retries", 0, kMax);
      site.failovers = getUint(s, "failovers", 0, kMax);
      site.dead = getBool(s, "dead", false);
      profile.sites.push_back(std::move(site));
    }
  }
  return profile;
}

Json parseLine(std::string_view line) {
  try {
    Json doc = Json::parse(line);
    if (!doc.isObject()) bad("message must be a JSON object");
    return doc;
  } catch (const JsonError& e) {
    bad(std::string("malformed JSON: ") + e.what());
  }
}

}  // namespace

const char* errorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownOp: return "unknown_op";
    case ErrorCode::kOversized: return "oversized";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

std::optional<ErrorCode> errorCodeFromName(std::string_view name) noexcept {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kUnknownOp, ErrorCode::kOversized,
        ErrorCode::kOverloaded, ErrorCode::kUnavailable, ErrorCode::kCancelled,
        ErrorCode::kInternal}) {
    if (name == errorCodeName(code)) return code;
  }
  return std::nullopt;
}

const char* adminActionName(AdminAction action) noexcept {
  switch (action) {
    case AdminAction::kAddSite: return "add-site";
    case AdminAction::kRemoveSite: return "remove-site";
    case AdminAction::kRebalance: return "rebalance";
    case AdminAction::kTopology: return "topology";
  }
  return "topology";
}

const char* priorityName(Priority p) noexcept {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kLow: return "low";
  }
  return "normal";
}

// ---------------------------------------------------------------------------
// Requests

Request decodeRequest(std::string_view line) {
  const Json doc = parseLine(line);
  const Json* op = doc.find("op");
  if (op == nullptr || !op->isString()) {
    bad("missing required string field 'op'");
  }
  const std::string& name = op->asString();
  if (name == "ping") return PingRequest{};
  if (name == "stats") return StatsRequest{};
  if (name == "cancel") {
    CancelRequest r;
    r.id = getString(doc, "id", "", kMaxIdBytes);
    if (r.id.empty()) bad("cancel needs a non-empty 'id'");
    return r;
  }
  if (name == "admin") {
    AdminRequest r;
    r.id = getString(doc, "id", "", kMaxIdBytes);
    if (r.id.empty()) bad("admin needs a non-empty 'id'");
    r.action = adminActionFromName(getString(doc, "action", "", 16));
    if (r.action == AdminAction::kRemoveSite) {
      if (doc.find("site") == nullptr) bad("remove-site needs a 'site'");
      r.site = static_cast<SiteId>(
          getUint(doc, "site", 0, std::numeric_limits<SiteId>::max()));
    }
    return r;
  }
  if (name == "query") {
    QueryRequest r;
    r.id = getString(doc, "id", "", kMaxIdBytes);
    if (r.id.empty()) bad("query needs a non-empty 'id'");
    r.algo = algoFromName(getString(doc, "algo", "edsud", 16));
    r.k = static_cast<std::size_t>(getUint(doc, "k", 0, 1u << 20));
    // One threshold field serves both modes: `q` is the threshold of a
    // threshold query and the enumeration floor of a top-k one (the
    // request may also spell the latter `floor_q`).
    r.q = getNumber(doc, "q", r.k > 0 ? 1e-3 : 0.3, 0.0, 1.0);
    r.q = getNumber(doc, "floor_q", r.q, 0.0, 1.0);
    r.mask = static_cast<DimMask>(
        getUint(doc, "mask", 0, std::numeric_limits<DimMask>::max()));
    r.window = windowFromJson(doc);
    r.tenant = getString(doc, "tenant", "default", kMaxTenantBytes);
    if (r.tenant.empty()) bad("'tenant' must be non-empty");
    r.priority = priorityFromJson(doc);
    r.deadlineMs =
        static_cast<std::uint32_t>(getUint(doc, "deadline_ms", 0, 3600'000));
    r.retries = static_cast<std::uint32_t>(getUint(doc, "retries", 0, 16));
    const std::string onFailure = getString(doc, "on_failure", "fail", 16);
    if (onFailure == "degrade") {
      r.degrade = true;
    } else if (onFailure != "fail") {
      bad("unknown on_failure '" + onFailure + "' (expected fail|degrade)");
    }
    r.progressive = getBool(doc, "progressive", true);
    r.limit = getUint(doc, "limit", 0, std::numeric_limits<std::uint32_t>::max());
    r.traceCapacity = static_cast<std::uint32_t>(
        getUint(doc, "trace_capacity", 0, 1u << 24));
    r.profile = getBool(doc, "profile", false);
    return r;
  }
  throw ProtoError(ErrorCode::kUnknownOp, "unknown op '" + name + "'");
}

std::string encodeRequest(const QueryRequest& request) {
  Json doc = Json::object();
  doc.set("op", "query");
  doc.set("id", request.id);
  if (request.k > 0) {
    doc.set("k", request.k);
    doc.set("floor_q", request.q);
  } else {
    doc.set("algo", algoName(request.algo));
    doc.set("q", request.q);
  }
  if (request.mask != 0) doc.set("mask", static_cast<std::uint64_t>(request.mask));
  if (request.window) doc.set("window", windowToJson(*request.window));
  if (request.tenant != "default") doc.set("tenant", request.tenant);
  if (request.priority != Priority::kNormal) {
    doc.set("priority", priorityName(request.priority));
  }
  if (request.deadlineMs != 0) doc.set("deadline_ms", request.deadlineMs);
  if (request.retries != 0) doc.set("retries", request.retries);
  if (request.degrade) doc.set("on_failure", "degrade");
  if (!request.progressive) doc.set("progressive", false);
  if (request.limit != 0) doc.set("limit", request.limit);
  if (request.traceCapacity != 0) {
    doc.set("trace_capacity", request.traceCapacity);
  }
  if (request.profile) doc.set("profile", true);
  return doc.dump();
}

std::string encodeRequest(const PingRequest&) {
  return R"({"op":"ping"})";
}

std::string encodeRequest(const CancelRequest& request) {
  Json doc = Json::object();
  doc.set("op", "cancel");
  doc.set("id", request.id);
  return doc.dump();
}

std::string encodeRequest(const StatsRequest&) {
  return R"({"op":"stats"})";
}

std::string encodeRequest(const AdminRequest& request) {
  Json doc = Json::object();
  doc.set("op", "admin");
  doc.set("id", request.id);
  doc.set("action", adminActionName(request.action));
  if (request.action == AdminAction::kRemoveSite) {
    doc.set("site", static_cast<std::uint64_t>(request.site));
  }
  return doc.dump();
}

// ---------------------------------------------------------------------------
// Responses

Response decodeResponse(std::string_view line) {
  const Json doc = parseLine(line);
  const Json* type = doc.find("type");
  if (type == nullptr || !type->isString()) {
    bad("missing required string field 'type'");
  }
  const std::string& name = type->asString();
  if (name == "pong") return PongResponse{};
  if (name == "ack") {
    AckResponse r;
    r.id = getString(doc, "id", "", kMaxIdBytes);
    r.query = getUint(doc, "query", 0, std::numeric_limits<QueryId>::max());
    return r;
  }
  if (name == "answer") {
    AnswerResponse r;
    r.id = getString(doc, "id", "", kMaxIdBytes);
    r.seq = getUint(doc, "seq", 0, std::numeric_limits<std::uint64_t>::max());
    r.entry.site = static_cast<SiteId>(
        getUint(doc, "site", 0, std::numeric_limits<SiteId>::max()));
    r.entry.localSkyProb = getNumber(doc, "p_local", 0.0, 0.0, 1.0);
    r.entry.globalSkyProb = getNumber(doc, "p_gsky", 0.0, 0.0, 1.0);
    r.entry.tuple = tupleFromJson(require(doc, "tuple"));
    return r;
  }
  if (name == "done") {
    DoneResponse r;
    r.id = getString(doc, "id", "", kMaxIdBytes);
    r.answers =
        getUint(doc, "answers", 0, std::numeric_limits<std::uint64_t>::max());
    r.degraded = getBool(doc, "degraded", false);
    if (const Json* excluded = doc.find("excluded"); excluded != nullptr) {
      if (!excluded->isArray()) bad("'excluded' must be an array");
      for (const Json& site : excluded->asArray()) {
        if (!site.isNumber()) bad("'excluded' must hold site ids");
        r.excluded.push_back(static_cast<SiteId>(site.asNumber()));
      }
    }
    if (const Json* stats = doc.find("stats"); stats != nullptr) {
      if (!stats->isObject()) bad("'stats' must be an object");
      constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
      r.stats.tuplesShipped = getUint(*stats, "tuples_shipped", 0, kMax);
      r.stats.bytesShipped = getUint(*stats, "bytes_shipped", 0, kMax);
      r.stats.roundTrips = getUint(*stats, "round_trips", 0, kMax);
      r.stats.candidatesPulled =
          static_cast<std::size_t>(getUint(*stats, "candidates_pulled", 0, kMax));
      r.stats.broadcasts =
          static_cast<std::size_t>(getUint(*stats, "broadcasts", 0, kMax));
      r.stats.expunged =
          static_cast<std::size_t>(getUint(*stats, "expunged", 0, kMax));
      r.stats.prunedAtSites =
          static_cast<std::size_t>(getUint(*stats, "pruned_at_sites", 0, kMax));
      r.stats.seconds = getNumber(*stats, "seconds", 0.0, 0.0,
                                  std::numeric_limits<double>::max());
    }
    if (const Json* profile = doc.find("profile"); profile != nullptr) {
      r.profile = profileFromJson(*profile);
    }
    return r;
  }
  if (name == "error") {
    ErrorResponse r;
    r.id = getString(doc, "id", "", kMaxIdBytes);
    const std::string code = getString(doc, "code", "internal", 32);
    const auto parsed = errorCodeFromName(code);
    if (!parsed) bad("unknown error code '" + code + "'");
    r.code = *parsed;
    r.message = getString(doc, "message", "", 4096);
    r.retryAfterMs = static_cast<std::uint32_t>(
        getUint(doc, "retry_after_ms", 0, 3600'000));
    return r;
  }
  if (name == "stats") {
    StatsResponse r;
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    r.active = getUint(doc, "active", 0, kMax);
    r.queued = getUint(doc, "queued", 0, kMax);
    r.admitted = getUint(doc, "admitted", 0, kMax);
    r.shed = getUint(doc, "shed", 0, kMax);
    return r;
  }
  if (name == "admin") {
    AdminResponse r;
    r.id = getString(doc, "id", "", kMaxIdBytes);
    r.epoch = getUint(doc, "epoch", 0,
                      std::numeric_limits<std::uint64_t>::max());
    r.site = static_cast<SiteId>(
        getUint(doc, "site", kNoSite, std::numeric_limits<SiteId>::max()));
    if (const Json* members = doc.find("members"); members != nullptr) {
      if (!members->isArray()) bad("'members' must be an array");
      for (const Json& member : members->asArray()) {
        if (!member.isNumber()) bad("'members' must hold site ids");
        r.members.push_back(static_cast<SiteId>(member.asNumber()));
      }
    }
    if (const Json* partitions = doc.find("partitions");
        partitions != nullptr) {
      if (!partitions->isArray()) bad("'partitions' must be an array");
      for (const Json& partition : partitions->asArray()) {
        r.partitions.push_back(partitionFromJson(partition));
      }
    }
    return r;
  }
  bad("unknown response type '" + name + "'");
}

std::string encodeResponse(const AckResponse& response) {
  Json doc = Json::object();
  doc.set("type", "ack");
  doc.set("id", response.id);
  doc.set("query", response.query);
  return doc.dump();
}

std::string encodeResponse(const AnswerResponse& response) {
  Json doc = Json::object();
  doc.set("type", "answer");
  doc.set("id", response.id);
  doc.set("seq", response.seq);
  doc.set("site", static_cast<std::uint64_t>(response.entry.site));
  doc.set("tuple", tupleToJson(response.entry.tuple));
  doc.set("p_local", response.entry.localSkyProb);
  doc.set("p_gsky", response.entry.globalSkyProb);
  return doc.dump();
}

std::string encodeResponse(const DoneResponse& response) {
  Json doc = Json::object();
  doc.set("type", "done");
  doc.set("id", response.id);
  doc.set("answers", response.answers);
  doc.set("degraded", response.degraded);
  if (!response.excluded.empty()) {
    Json excluded = Json::array();
    for (const SiteId site : response.excluded) {
      excluded.push(static_cast<std::uint64_t>(site));
    }
    doc.set("excluded", std::move(excluded));
  }
  Json stats = Json::object();
  stats.set("tuples_shipped", response.stats.tuplesShipped);
  stats.set("bytes_shipped", response.stats.bytesShipped);
  stats.set("round_trips", response.stats.roundTrips);
  stats.set("candidates_pulled", response.stats.candidatesPulled);
  stats.set("broadcasts", response.stats.broadcasts);
  stats.set("expunged", response.stats.expunged);
  stats.set("pruned_at_sites", response.stats.prunedAtSites);
  stats.set("seconds", response.stats.seconds);
  doc.set("stats", std::move(stats));
  if (response.profile) doc.set("profile", profileToJson(*response.profile));
  return doc.dump();
}

std::string encodeResponse(const ErrorResponse& response) {
  Json doc = Json::object();
  doc.set("type", "error");
  if (!response.id.empty()) doc.set("id", response.id);
  doc.set("code", errorCodeName(response.code));
  doc.set("message", response.message);
  if (response.retryAfterMs != 0) {
    doc.set("retry_after_ms", response.retryAfterMs);
  }
  return doc.dump();
}

std::string encodeResponse(const PongResponse&) {
  return R"({"type":"pong"})";
}

std::string encodeResponse(const StatsResponse& response) {
  Json doc = Json::object();
  doc.set("type", "stats");
  doc.set("active", response.active);
  doc.set("queued", response.queued);
  doc.set("admitted", response.admitted);
  doc.set("shed", response.shed);
  return doc.dump();
}

std::string encodeResponse(const AdminResponse& response) {
  Json doc = Json::object();
  doc.set("type", "admin");
  doc.set("id", response.id);
  doc.set("epoch", response.epoch);
  if (response.site != kNoSite) {
    doc.set("site", static_cast<std::uint64_t>(response.site));
  }
  Json members = Json::array();
  for (const SiteId member : response.members) {
    members.push(static_cast<std::uint64_t>(member));
  }
  doc.set("members", std::move(members));
  Json partitions = Json::array();
  for (const PartitionDesc& partition : response.partitions) {
    partitions.push(partitionToJson(partition));
  }
  doc.set("partitions", std::move(partitions));
  return doc.dump();
}

}  // namespace dsud::server
