// Minimal JSON document model for the client protocol (src/server/proto.hpp).
//
// The daemon speaks line-delimited JSON to arbitrary clients, so unlike the
// binary site protocol (core/protocol.hpp) the decoder here must survive
// hostile input: parse() bounds nesting depth, validates UTF-8 in strings,
// rejects trailing garbage, and reports every failure as a JsonError that
// the connection turns into a clean `error` response — never a crash or a
// desynchronised stream.  No external dependency: the repo builds with the
// toolchain alone.
//
// Numbers are IEEE doubles.  dump() prints integral values in [-2^53, 2^53]
// without an exponent or fraction and everything else with %.17g, so a
// double survives a dump/parse round trip bit for bit — the server tests
// rely on this to compare streamed answers against direct QueryEngine runs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace dsud::server {

/// Any malformed-document condition: syntax, depth, UTF-8, size.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value.  Objects preserve insertion order (deterministic output)
/// and are expected to stay small, so lookup is linear.
class Json {
 public:
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() noexcept : value_(nullptr) {}
  Json(std::nullptr_t) noexcept : value_(nullptr) {}
  Json(bool b) noexcept : value_(b) {}
  /// One constructor for every arithmetic type — individual overloads would
  /// leave uint32_t/float callers ambiguous between the wider candidates.
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  Json(T number) noexcept : value_(static_cast<double>(number)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  bool isNull() const noexcept { return holds<std::nullptr_t>(); }
  bool isBool() const noexcept { return holds<bool>(); }
  bool isNumber() const noexcept { return holds<double>(); }
  bool isString() const noexcept { return holds<std::string>(); }
  bool isArray() const noexcept { return holds<Array>(); }
  bool isObject() const noexcept { return holds<Object>(); }

  /// Typed accessors throw JsonError on kind mismatch, so codec code can
  /// funnel every schema violation through one catch.
  bool asBool() const { return get<bool>("bool"); }
  double asNumber() const { return get<double>("number"); }
  const std::string& asString() const { return get<std::string>("string"); }
  const Array& asArray() const { return get<Array>("array"); }
  const Object& asObject() const { return get<Object>("object"); }

  /// Object member by key; null when absent (or when not an object).
  const Json* find(std::string_view key) const noexcept;

  /// Appends a member (object) / element (array); throws on kind mismatch.
  Json& set(std::string key, Json value);
  Json& push(Json value);

  /// Serialises the value on one line (no newline, no insignificant
  /// whitespace) — exactly the framing the client protocol ships.
  std::string dump() const;
  void dumpTo(std::string& out) const;

  /// Parses exactly one document covering all of `text` (leading/trailing
  /// ASCII whitespace allowed).  Throws JsonError on anything else.
  static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  template <typename T>
  bool holds() const noexcept {
    return std::holds_alternative<T>(value_);
  }
  template <typename T>
  const T& get(const char* kind) const {
    if (const T* v = std::get_if<T>(&value_)) return *v;
    throw JsonError(std::string("expected ") + kind);
  }

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Appends `text` as a quoted JSON string (escaping quotes, backslashes and
/// control characters).  Assumes valid UTF-8 — the parser guarantees it for
/// anything that came off the wire.
void appendJsonString(std::string& out, std::string_view text);

/// True when `text` is well-formed UTF-8 (no overlong forms, no surrogates,
/// max U+10FFFF).  The parser applies this to every string literal so the
/// daemon never echoes invalid byte sequences back at other clients.
bool isValidUtf8(std::string_view text);

}  // namespace dsud::server
