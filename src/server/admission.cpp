#include "server/admission.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/log.hpp"

namespace dsud::server {

namespace {

double steadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::MetricsRegistry* metrics,
                                         Clock clock)
    : config_(std::move(config)),
      clock_(clock ? std::move(clock) : Clock(steadySeconds)),
      metrics_(metrics) {
  if (metrics_ != nullptr) {
    admittedCounter_ = &metrics_->counter("dsud_server_admitted_total");
    queuedCounter_ = &metrics_->counter("dsud_server_queued_total");
    activeGauge_ = &metrics_->gauge("dsud_server_active");
    queueDepthGauge_ = &metrics_->gauge("dsud_server_queue_depth");
    // Pre-register every shed reason so the /metrics exposition shows the
    // zero series from the first scrape (dashboards alert on absence).
    for (const char* reason : {"tenant_quota", "cluster_degraded", "capacity"}) {
      metrics_->counter(
          obs::labeled("dsud_server_shed_total", {{"reason", reason}}));
    }
  }
}

const TenantQuota& AdmissionController::quotaFor(
    const std::string& tenant) const {
  const auto it = config_.tenants.find(tenant);
  return it != config_.tenants.end() ? it->second : config_.defaultQuota;
}

bool AdmissionController::takeToken(const std::string& tenant, double now,
                                    std::uint32_t* retryAfterMs) {
  const TenantQuota& quota = quotaFor(tenant);
  if (quota.ratePerSec <= 0.0) return true;  // unlimited
  Bucket& bucket = buckets_[tenant];
  if (!bucket.initialised) {
    bucket.tokens = quota.burst;
    bucket.lastRefill = now;
    bucket.initialised = true;
  }
  const double elapsed = std::max(0.0, now - bucket.lastRefill);
  bucket.tokens =
      std::min(quota.burst, bucket.tokens + elapsed * quota.ratePerSec);
  bucket.lastRefill = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  // Time until one full token accumulates, rounded up to a whole ms so the
  // client never retries a hair too early.  Clamped to the protocol's
  // retry_after_ms ceiling (one hour) — a near-zero refill rate would
  // otherwise overflow the cast and be rejected by conforming decoders.
  const double deficit = 1.0 - bucket.tokens;
  const double ms = std::ceil(deficit / quota.ratePerSec * 1e3);
  *retryAfterMs = static_cast<std::uint32_t>(std::clamp(ms, 1.0, 3600e3));
  return false;
}

void AdmissionController::recordShed(const char* reason,
                                     const std::string& tenant) {
  ++shedTotal_;
  if (metrics_ != nullptr) {
    metrics_
        ->counter(obs::labeled("dsud_server_shed_total", {{"reason", reason}}))
        .inc();
  }
  obs::eventLog().emit(LogLevel::kWarn, "admission", "admission.shed",
                       {obs::field("reason", reason),
                        obs::field("tenant", tenant)});
}

AdmissionController::Outcome AdmissionController::submit(
    const std::string& tenant, Priority priority, std::function<void()> start,
    Shed* shed) {
  {
    std::lock_guard lock(mutex_);

    std::uint32_t retryAfterMs = 0;
    if (!takeToken(tenant, clock_(), &retryAfterMs)) {
      recordShed("tenant_quota", tenant);
      if (shed != nullptr) {
        *shed = Shed{ErrorCode::kOverloaded, "tenant_quota", retryAfterMs};
      }
      return Outcome::kShed;
    }

    if (breakerProbe_ && config_.breakerShedFraction <= 1.0 &&
        breakerProbe_() >= config_.breakerShedFraction) {
      recordShed("cluster_degraded", tenant);
      if (shed != nullptr) {
        *shed = Shed{ErrorCode::kUnavailable, "cluster_degraded",
                     config_.retryAfterMs};
      }
      return Outcome::kShed;
    }

    // The effective in-flight count is the max of this controller's own
    // admissions and the engine-wide gauge: co-located direct engine use
    // (or a second front end over the same coordinator) consumes the same
    // worker and site capacity this cap protects.
    std::size_t inflight = active_;
    if (inflightProbe_) {
      const double probed = inflightProbe_();
      if (probed > 0) {
        inflight = std::max(inflight, static_cast<std::size_t>(probed));
      }
    }
    if (config_.maxInFlight == 0 || inflight < config_.maxInFlight) {
      ++active_;
      ++admittedTotal_;
      if (admittedCounter_ != nullptr) admittedCounter_->inc();
      if (activeGauge_ != nullptr) {
        activeGauge_->set(static_cast<double>(active_));
      }
      // fall through to invoke start() outside the lock
    } else {
      const std::size_t depth =
          queues_[0].size() + queues_[1].size() + queues_[2].size();
      if (depth < config_.maxQueued) {
        queues_[static_cast<std::size_t>(priority)].push_back(std::move(start));
        if (queuedCounter_ != nullptr) queuedCounter_->inc();
        if (queueDepthGauge_ != nullptr) {
          queueDepthGauge_->set(static_cast<double>(depth + 1));
        }
        return Outcome::kQueue;
      }
      recordShed("capacity", tenant);
      if (shed != nullptr) {
        *shed =
            Shed{ErrorCode::kOverloaded, "capacity", config_.retryAfterMs};
      }
      return Outcome::kShed;
    }
  }
  start();
  return Outcome::kAdmit;
}

void AdmissionController::release() {
  std::function<void()> next;
  {
    std::lock_guard lock(mutex_);
    for (auto& queue : queues_) {
      if (!queue.empty()) {
        next = std::move(queue.front());
        queue.pop_front();
        break;
      }
    }
    if (next) {
      // The freed slot transfers to the dequeued request: `active_` is
      // unchanged and the admission is counted now.
      ++admittedTotal_;
      if (admittedCounter_ != nullptr) admittedCounter_->inc();
      if (queueDepthGauge_ != nullptr) {
        queueDepthGauge_->set(static_cast<double>(
            queues_[0].size() + queues_[1].size() + queues_[2].size()));
      }
    } else {
      if (active_ > 0) --active_;
      if (activeGauge_ != nullptr) {
        activeGauge_->set(static_cast<double>(active_));
      }
    }
  }
  if (next) next();
}

std::size_t AdmissionController::active() const {
  std::lock_guard lock(mutex_);
  return active_;
}

std::size_t AdmissionController::queued() const {
  std::lock_guard lock(mutex_);
  return queues_[0].size() + queues_[1].size() + queues_[2].size();
}

std::uint64_t AdmissionController::admittedTotal() const {
  std::lock_guard lock(mutex_);
  return admittedTotal_;
}

std::uint64_t AdmissionController::shedTotal() const {
  std::lock_guard lock(mutex_);
  return shedTotal_;
}

}  // namespace dsud::server
