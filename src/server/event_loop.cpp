#include "server/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

namespace dsud::server {

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// epoll_event.data layout: fd in the low 32 bits, registration generation
/// in the high 32 (see EventLoop::Handler).
std::uint64_t packEvent(int fd, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint32_t>(fd);
}

}  // namespace

EventLoop::EventLoop() {
  epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) {
    throw NetError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeFd_ < 0) {
    const int err = errno;
    ::close(epollFd_);
    epollFd_ = -1;
    throw NetError(std::string("eventfd: ") + std::strerror(err));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = packEvent(wakeFd_, 0);  // the wake fd never closes; gen 0
  if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) != 0) {
    const int err = errno;
    ::close(wakeFd_);
    ::close(epollFd_);
    wakeFd_ = epollFd_ = -1;
    throw NetError(std::string("epoll_ctl(wake): ") + std::strerror(err));
  }
}

EventLoop::~EventLoop() {
  if (wakeFd_ >= 0) ::close(wakeFd_);
  if (epollFd_ >= 0) ::close(epollFd_);
}

void EventLoop::add(int fd, std::uint32_t events, IoCallback callback) {
  const std::uint32_t gen = nextGen_++;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = packEvent(fd, gen);
  if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw NetError(std::string("epoll_ctl(add): ") + std::strerror(errno));
  }
  handlers_[fd] = Handler{gen, std::make_shared<IoCallback>(std::move(callback))};
}

void EventLoop::modify(int fd, std::uint32_t events) {
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    throw NetError("epoll_ctl(mod): fd not registered");
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = packEvent(fd, it->second.gen);
  if (::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw NetError(std::string("epoll_ctl(mod): ") + std::strerror(errno));
  }
}

void EventLoop::remove(int fd) {
  // The kernel drops the registration with the last close() anyway; the
  // explicit ctl keeps the loop's view exact while the fd is still open.
  ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::stop() {
  stopRequested_ = true;
  wake();
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard lock(postMutex_);
    posted_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wakeFd_, &one, sizeof one);
}

void EventLoop::drainWake() {
  std::uint64_t value = 0;
  while (::read(wakeFd_, &value, sizeof value) == sizeof value) {
  }
}

void EventLoop::runPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard lock(postMutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

std::uint64_t EventLoop::runAfter(double seconds, std::function<void()> fn) {
  const std::uint64_t token = nextTimerToken_++;
  timers_.push_back(Timer{token, nowSeconds() + std::max(0.0, seconds),
                          std::move(fn)});
  return token;
}

void EventLoop::cancelTimer(std::uint64_t token) {
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [token](const Timer& t) {
                                 return t.token == token;
                               }),
                timers_.end());
}

int EventLoop::msUntilNextTimer() const {
  if (timers_.empty()) return -1;  // block until an fd or the wake fires
  double next = timers_.front().deadline;
  for (const Timer& t : timers_) next = std::min(next, t.deadline);
  const double ms = (next - nowSeconds()) * 1e3;
  if (ms <= 0) return 0;
  return static_cast<int>(std::min(ms, 60'000.0)) + 1;
}

void EventLoop::runDueTimers() {
  if (timers_.empty()) return;
  const double now = nowSeconds();
  std::vector<Timer> due;
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [&](Timer& t) {
                                 if (t.deadline > now) return false;
                                 due.push_back(std::move(t));
                                 return true;
                               }),
                timers_.end());
  for (Timer& t : due) t.fn();
}

void EventLoop::run() {
  running_ = true;
  stopRequested_ = false;
  epoll_event events[64];
  while (!stopRequested_) {
    const int n =
        ::epoll_wait(epollFd_, events, std::size(events), msUntilNextTimer());
    if (n < 0) {
      if (errno == EINTR) continue;
      running_ = false;
      throw NetError(std::string("epoll_wait: ") + std::strerror(errno));
    }
    for (int i = 0; i < n && !stopRequested_; ++i) {
      const std::uint64_t key = events[i].data.u64;
      const int fd = static_cast<int>(key & 0xffffffffu);
      const std::uint32_t gen = static_cast<std::uint32_t>(key >> 32);
      if (fd == wakeFd_) {
        drainWake();
        if (wakeHandler_) wakeHandler_();
        continue;
      }
      // Hold a reference: the callback may remove (even close) its own fd.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed by an earlier callback
      if (it->second.gen != gen) continue;  // fd reused; event is stale
      const std::shared_ptr<IoCallback> handler = it->second.callback;
      (*handler)(events[i].events);
    }
    runPosted();
    runDueTimers();
  }
  running_ = false;
}

}  // namespace dsud::server
