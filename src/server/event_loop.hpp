// Single-threaded epoll event loop for the query-serving daemon.
//
// One loop thread multiplexes every listener and client connection — no
// thread-per-connection.  Worker threads never touch fds directly; they
// hand results back with post(), which enqueues a closure and wakes the
// loop through an eventfd.  Timers are coarse (the drain deadline, not
// per-packet timeouts), so a sorted scan over a handful of entries beats a
// timer wheel.
//
// Thread-safety contract: add/modify/remove and the callbacks run on the
// loop thread only; post(), wake(), and stop() may be called from any
// thread (and stop() additionally from signal context via the wakeFd).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/wire.hpp"

namespace dsud::server {

class EventLoop {
 public:
  /// `events` is the EPOLLIN/EPOLLOUT bitmask the fd was registered with.
  using IoCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (loop thread only).  The callback may add/remove other
  /// fds freely; removing its *own* fd is safe too (the dispatch holds a
  /// reference to the handler, not an iterator).
  void add(int fd, std::uint32_t events, IoCallback callback);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);

  /// Dispatches events until stop().  Runs posted tasks and due timers
  /// between epoll waits.
  void run();

  /// Ends run() after the current iteration.  Any thread.
  void stop();

  /// Enqueues `task` for the loop thread and wakes it.  Any thread.
  void post(std::function<void()> task);

  /// Forces the loop through one more iteration.  Any thread.
  void wake();

  /// Runs `fn` on the loop thread once `seconds` have elapsed.  Returns a
  /// token for cancelTimer().  Loop thread only (post() a closure that
  /// schedules, when arming from elsewhere).
  std::uint64_t runAfter(double seconds, std::function<void()> fn);
  void cancelTimer(std::uint64_t token);

  /// The eventfd that wakes the loop.  A signal handler may write(2) an
  /// 8-byte value to it (async-signal-safe) to force an iteration; pair
  /// with an atomic flag checked from the wake handler below.
  int wakeFd() const noexcept { return wakeFd_; }

  /// Runs on the loop thread after every wake (post(), wake(), or a signal
  /// handler writing to wakeFd()).  This is where a daemon checks its
  /// signal flags.  Set before run(); loop thread only.
  void setWakeHandler(std::function<void()> handler) {
    wakeHandler_ = std::move(handler);
  }

  bool running() const noexcept { return running_; }

 private:
  struct Timer {
    std::uint64_t token;
    double deadline;  ///< steady-clock seconds
    std::function<void()> fn;
  };

  void drainWake();
  void runPosted();
  int msUntilNextTimer() const;
  void runDueTimers();

  /// A registration is (fd, generation): the generation rides along in
  /// epoll_event.data and is re-checked at dispatch, so a queued event for
  /// an fd that was closed and reused by a later accept() within the same
  /// epoll_wait batch is dropped instead of reaching the new registration.
  struct Handler {
    std::uint32_t gen = 0;
    std::shared_ptr<IoCallback> callback;
  };

  int epollFd_ = -1;
  int wakeFd_ = -1;
  bool running_ = false;
  bool stopRequested_ = false;
  std::uint32_t nextGen_ = 1;
  std::map<int, Handler> handlers_;
  std::function<void()> wakeHandler_;
  std::vector<Timer> timers_;
  std::uint64_t nextTimerToken_ = 1;

  std::mutex postMutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace dsud::server
