#include "server/connection.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dsud::server {

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw NetError(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
}

Connection::Connection(std::uint64_t id, Socket socket,
                       std::size_t maxLineBytes, std::size_t maxOutboxBytes)
    : id_(id),
      socket_(std::move(socket)),
      maxLineBytes_(maxLineBytes),
      maxOutboxBytes_(maxOutboxBytes) {
  setNonBlocking(socket_.fd());
}

Connection::IoResult Connection::onReadable() {
  char chunk[16384];
  for (;;) {
    if (defunct_) return IoResult::kOk;  // teardown posted; stop reading
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof chunk, 0);
    if (n > 0) {
      std::size_t start = 0;
      if (skippingOversized_) {
        // Discard up to and including the next newline, then resume normal
        // framing with whatever follows it.
        const char* nl = static_cast<const char*>(
            std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
        if (nl == nullptr) continue;
        skippingOversized_ = false;
        start = static_cast<std::size_t>(nl - chunk) + 1;
      }
      inbox_.append(chunk + start, static_cast<std::size_t>(n) - start);

      std::size_t lineStart = 0;
      for (;;) {
        const std::size_t nl = inbox_.find('\n', lineStart);
        if (nl == std::string::npos) break;
        std::string_view line(inbox_.data() + lineStart, nl - lineStart);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (line.size() > maxLineBytes_) {
          // A complete-but-oversized line (arrived within one read burst).
          if (onOversize_) onOversize_();
        } else if (onLine_) {
          onLine_(line);
        }
        lineStart = nl + 1;
        // A handler may have dropped this connection (send failure); the
        // remaining pipelined lines belong to a dead peer.
        if (defunct_) break;
      }
      inbox_.erase(0, lineStart);
      if (defunct_) return IoResult::kOk;

      if (inbox_.size() > maxLineBytes_) {
        inbox_.clear();
        skippingOversized_ = true;
        if (onOversize_) onOversize_();
        if (defunct_) return IoResult::kOk;
      }
      continue;
    }
    if (n == 0) return IoResult::kClosed;  // peer EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    return IoResult::kClosed;
  }
}

Connection::IoResult Connection::onWritable() {
  while (outboxOffset_ < outbox_.size()) {
    const ssize_t n =
        ::send(socket_.fd(), outbox_.data() + outboxOffset_,
               outbox_.size() - outboxOffset_, MSG_NOSIGNAL);
    if (n > 0) {
      outboxOffset_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return IoResult::kClosed;
  }
  if (outboxOffset_ == outbox_.size()) {
    outbox_.clear();
    outboxOffset_ = 0;
  } else if (outboxOffset_ > (64u << 10)) {
    // Compact occasionally so a slow reader does not pin flushed bytes.
    outbox_.erase(0, outboxOffset_);
    outboxOffset_ = 0;
  }
  return IoResult::kOk;
}

Connection::IoResult Connection::send(std::string_view line) {
  if (defunct_) return IoResult::kOk;  // already being torn down; drop it
  outbox_.append(line);
  outbox_.push_back('\n');
  if (onWritable() == IoResult::kClosed) return IoResult::kClosed;
  if (outbox_.size() - outboxOffset_ > maxOutboxBytes_) {
    return IoResult::kClosed;  // peer is not draining; cut it loose
  }
  return IoResult::kOk;
}

std::shared_ptr<std::atomic<bool>> Connection::registerQuery(
    const std::string& clientId) {
  auto [it, inserted] =
      queries_.try_emplace(clientId, std::make_shared<std::atomic<bool>>(false));
  if (!inserted) return nullptr;
  return it->second;
}

std::shared_ptr<std::atomic<bool>> Connection::findQuery(
    const std::string& clientId) const {
  const auto it = queries_.find(clientId);
  return it != queries_.end() ? it->second : nullptr;
}

void Connection::unregisterQuery(const std::string& clientId) {
  queries_.erase(clientId);
}

void Connection::cancelAll() {
  for (auto& [clientId, token] : queries_) {
    token->store(true, std::memory_order_relaxed);
  }
}

}  // namespace dsud::server
