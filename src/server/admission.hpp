// Admission control for the query-serving daemon.
//
// Three gates stand between an accepted request line and a QueryEngine
// session, applied in order:
//
//   1. Per-tenant token bucket — each tenant refills at `ratePerSec` up to
//      `burst`; an empty bucket sheds immediately with `overloaded` and a
//      retry-after derived from the refill rate.  Quota violations never
//      consume cluster capacity.
//   2. Cluster-health probe — when the configured fraction of site circuit
//      breakers is open (SiteHealth, fed by the fault layer), new queries
//      are shed with `unavailable`: admitting them would only burn retry
//      budgets against dead sites.
//   3. Global in-flight cap — at most `maxInFlight` queries execute at
//      once, counting both this server's own admissions and whatever the
//      `dsud_queries_inflight` gauges report (so co-located direct engine
//      use also counts).  Beyond the cap, up to `maxQueued` requests wait
//      in priority order (high before normal before low, FIFO within a
//      class); beyond that the request is shed with `overloaded` and a
//      retry-after hint — explicit load shedding before the cluster
//      saturates, never an unbounded queue.
//
// Thread-safety contract: submit()/release() may be called from any thread
// (the event loop submits, worker threads release).  Queued starts are
// invoked from release() — i.e. on the worker thread that just freed the
// slot — outside the controller lock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "server/proto.hpp"

namespace dsud::server {

struct TenantQuota {
  double ratePerSec = 0.0;  ///< sustained queries/second (0 = unlimited)
  double burst = 32.0;      ///< bucket capacity (max burst size)
};

struct AdmissionConfig {
  /// Queries executing at once, across all tenants.  0 disables the cap.
  std::size_t maxInFlight = 64;
  /// Requests waiting for a slot before shedding starts.
  std::size_t maxQueued = 256;
  /// Default quota for tenants without an explicit entry in `tenants`.
  TenantQuota defaultQuota;
  /// Per-tenant overrides.
  std::map<std::string, TenantQuota> tenants;
  /// Shed with `unavailable` when at least this fraction of site breakers
  /// is open (0 < f <= 1; >1 disables the gate).
  double breakerShedFraction = 0.5;
  /// Retry-after hint on capacity sheds (quota sheds compute their own from
  /// the refill rate).
  std::uint32_t retryAfterMs = 100;
};

class AdmissionController {
 public:
  /// Monotonic seconds; injectable so quota tests control refill exactly.
  using Clock = std::function<double()>;
  /// Fraction of site breakers currently open, in [0, 1].
  using BreakerProbe = std::function<double()>;
  /// Queries in flight beyond this controller's own accounting (the
  /// `dsud_queries_inflight` gauges); max()-ed with the internal count.
  using InflightProbe = std::function<double()>;

  /// `metrics` (nullable) receives dsud_server_admitted_total,
  /// dsud_server_queued_total, dsud_server_shed_total{reason=...}, and the
  /// dsud_server_active / dsud_server_queue_depth gauges.
  explicit AdmissionController(AdmissionConfig config,
                               obs::MetricsRegistry* metrics = nullptr,
                               Clock clock = {});

  void setBreakerProbe(BreakerProbe probe) { breakerProbe_ = std::move(probe); }
  void setInflightProbe(InflightProbe probe) {
    inflightProbe_ = std::move(probe);
  }

  enum class Outcome : std::uint8_t {
    kAdmit,  ///< `start` was invoked before returning
    kQueue,  ///< `start` captured; a future release() will invoke it
    kShed,   ///< rejected; `*shed` describes why
  };

  /// Why a request was shed, in the shape the `error` response needs.
  struct Shed {
    ErrorCode code = ErrorCode::kOverloaded;
    std::string reason;  ///< "tenant_quota" | "cluster_degraded" | "capacity"
    std::uint32_t retryAfterMs = 0;
  };

  /// One request.  On kAdmit and kQueue the caller owes exactly one
  /// release() after the started query finishes (however it finishes).
  Outcome submit(const std::string& tenant, Priority priority,
                 std::function<void()> start, Shed* shed);

  /// A previously started query completed: hands the freed slot to the
  /// highest-priority queued request (invoking its `start`), or lowers the
  /// in-flight count when the queue is empty.
  void release();

  std::size_t active() const;
  std::size_t queued() const;
  std::uint64_t admittedTotal() const;
  std::uint64_t shedTotal() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    double lastRefill = 0.0;
    bool initialised = false;
  };

  /// Refills and tries to take one token; on failure computes the
  /// retry-after for the caller's shed response.  Lock held.
  bool takeToken(const std::string& tenant, double now,
                 std::uint32_t* retryAfterMs);
  const TenantQuota& quotaFor(const std::string& tenant) const;
  void recordShed(const char* reason, const std::string& tenant);

  AdmissionConfig config_;
  Clock clock_;
  BreakerProbe breakerProbe_;
  InflightProbe inflightProbe_;

  mutable std::mutex mutex_;
  std::map<std::string, Bucket> buckets_;
  std::deque<std::function<void()>> queues_[3];  ///< indexed by Priority
  std::size_t active_ = 0;
  std::uint64_t admittedTotal_ = 0;
  std::uint64_t shedTotal_ = 0;

  obs::Counter* admittedCounter_ = nullptr;
  obs::Counter* queuedCounter_ = nullptr;
  obs::Gauge* activeGauge_ = nullptr;
  obs::Gauge* queueDepthGauge_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace dsud::server
