// dsudd's core: a persistent query-serving daemon over one QueryEngine.
//
// One event-loop thread owns two listening sockets (the NDJSON query port
// and the HTTP port for /metrics, /healthz, and the /debug/* introspection
// endpoints) and every accepted connection;
// a fixed worker pool executes admitted queries as ordinary QueryEngine
// sessions.  The two worlds meet only through EventLoop::post — workers
// never touch sockets, the loop thread never blocks on a query:
//
//     client line ──loop──> decode ──> AdmissionController::submit
//                                 │
//             kShed ──loop──> `error` (overloaded/unavailable + retry_after)
//             kAdmit/kQueue ──> worker: ack, engine.run*(id), answers
//                                 │  (progress callback posts `answer` lines)
//                                 └──loop──> terminal `done` / `error`
//
// Cancellation is cooperative: every query carries a shared flag
// (QueryOptions::cancel) flipped by a `cancel` op, by client disconnect, or
// by the drain deadline; the engine aborts at its next round boundary.
//
// Graceful shutdown (requestDrain): the query listener closes, /healthz
// flips to 503, in-flight and queued queries finish normally until the
// drain deadline, then their cancel flags flip and a backstop timer stops
// the loop regardless.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/query_engine.hpp"
#include "core/topology.hpp"
#include "core/result_cache.hpp"
#include "server/admission.hpp"
#include "server/connection.hpp"
#include "server/event_loop.hpp"
#include "server/http.hpp"
#include "server/proto.hpp"

namespace dsud::server {

struct ServerConfig {
  std::uint16_t port = 0;      ///< query port (0 = pick a free one)
  std::uint16_t httpPort = 0;  ///< /metrics, /healthz, /debug/* (0 = pick)
  std::size_t workers = 4;     ///< query-executing worker threads
  AdmissionConfig admission;
  double drainSeconds = 5.0;  ///< requestDrain(): grace before cancelling
  std::size_t maxLineBytes = 1u << 20;    ///< request-line cap (1 MiB)
  std::size_t maxOutboxBytes = 8u << 20;  ///< per-connection write buffer cap
  /// Result-cache entries kept across queries (0 disables the cache).  The
  /// cache is keyed by dataset version, so Sec. 5.4 maintenance retires
  /// stale answers automatically.
  std::size_t cacheCapacity = 256;
  std::size_t cacheShards = 8;  ///< lock shards for the result cache
  /// Shared-work batching applied to every threshold query the server runs
  /// (disabled by default; dsudd's --batch-window-ms turns it on).
  BatchingOptions batching;
  /// Elastic-cluster admin surface behind `{"op":"admin"}`.  The wiring
  /// layer (dsudd) points these at its InProcCluster; when unset, admin
  /// requests are rejected with `bad_request`.  Mutating hooks may block for
  /// the length of a rebalance — the server always calls them from a worker
  /// thread, never from the event loop.
  struct AdminHooks {
    std::function<SiteId()> addSite;
    std::function<void(SiteId)> removeSite;
    std::function<void()> rebalance;
    std::function<Topology()> topology;
  };
  AdminHooks admin;
};

class QueryServer {
 public:
  /// The engine (and its coordinator) and the registry must outlive the
  /// server.  The registry is the one scraped by /metrics — pass the same
  /// one the coordinator uses so engine and server series share a page.
  QueryServer(QueryEngine& engine, obs::MetricsRegistry& metrics,
              ServerConfig config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds both listeners and starts the worker pool.  After start() the
  /// bound ports are known; the loop is not yet running.
  void start();

  /// Runs the event loop on the calling thread until stop() or a completed
  /// drain.  start() is implied if not yet called.
  void run();

  /// Begins a graceful drain (idempotent; any thread): stop accepting,
  /// finish in-flight work within `drainSeconds`, then cancel stragglers
  /// and stop.  run() returns once the drain completes.
  void requestDrain();

  /// Stops the loop without draining (any thread).  In-flight queries are
  /// cancelled and joined by the destructor.
  void stop();

  std::uint16_t port() const noexcept { return port_; }
  std::uint16_t httpPort() const noexcept { return httpPort_; }

  EventLoop& loop() noexcept { return loop_; }
  AdmissionController& admission() noexcept { return admission_; }
  bool draining() const noexcept { return draining_.load(std::memory_order_relaxed); }

 private:
  /// Everything one admitted query needs, copyable into the worker task.
  struct QueryJob {
    std::uint64_t connId = 0;
    QueryRequest request;
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  void acceptClients();
  void acceptHttp();
  void handleClientEvent(std::uint64_t connId, std::uint32_t events);
  void handleHttpEvent(std::uint64_t connId, std::uint32_t events);
  void handleLine(std::uint64_t connId, std::string_view line);
  void handleQuery(std::uint64_t connId, QueryRequest request);
  void handleAdmin(std::uint64_t connId, AdminRequest request);
  void runQuery(QueryJob job);   ///< worker thread
  void runAdmin(std::uint64_t connId, AdminRequest request);  ///< worker
  QueryResult executeQuery(const QueryRequest& request,
                           const QueryOptions& options, QueryId id);

  /// Queues `line` on the connection (dropped when it is gone) and keeps
  /// the epoll write interest in sync.  Loop thread only.
  void sendLine(std::uint64_t connId, const std::string& line);
  void sendError(std::uint64_t connId, const std::string& requestId,
                 ErrorCode code, const std::string& message,
                 std::uint32_t retryAfterMs = 0);
  void updateInterest(Connection& conn);
  /// Marks the connection defunct and posts the real close.  Safe from any
  /// loop-thread frame, including inside the connection's own IO callback.
  void dropConnection(std::uint64_t connId);
  /// Destroys the connection.  Only from frames where no handler of this
  /// connection is on the stack (event dispatch top level or a posted task).
  void closeConnection(std::uint64_t connId);
  void closeHttp(std::uint64_t connId);

  std::string httpRespond(std::string_view method, std::string_view path);
  void countRequest(const char* op);

  // --- /debug introspection --------------------------------------------------

  /// One row of /debug/queries: in-flight and recently finished queries.
  /// Workers write rows (debugBegin / debugFinish), the loop thread renders
  /// them; both sides serialise on debugMutex_.
  struct QueryDebugRow {
    QueryId query = kNoQuery;
    std::string requestId;
    std::string tenant;
    std::string algo;
    std::string state = "running";  ///< running | done | error | cancelled
    std::uint64_t answers = 0;
    double seconds = 0.0;
    bool degraded = false;
    std::string cache;  ///< profile disposition, set once finished
    std::string batch;
    std::uint64_t failovers = 0;
    std::uint64_t startNs = 0;  ///< wall clock; ages running queries
  };

  void debugBegin(QueryId id, const QueryRequest& request);  ///< worker
  void debugFinish(QueryId id, const char* state,
                   const QueryResult* result);  ///< worker

  std::string debugQueriesJson();
  std::string debugTopologyJson();
  std::string debugCacheJson();
  std::string debugRecorderJson();

  void beginDrain();       ///< loop thread
  void checkDrainDone();   ///< loop thread
  double breakerOpenFraction();
  double engineInflight();

  QueryEngine& engine_;
  obs::MetricsRegistry& metrics_;
  ServerConfig config_;

  /// Server-owned global-skyline result cache, attached to the engine for
  /// the server's lifetime (detached in the destructor after the workers
  /// join).  Null when cacheCapacity == 0.
  std::unique_ptr<ResultCache> cache_;

  EventLoop loop_;
  AdmissionController admission_;

  Socket listener_;
  Socket httpListener_;
  std::uint16_t port_ = 0;
  std::uint16_t httpPort_ = 0;
  bool started_ = false;

  std::uint64_t nextConnId_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::map<std::uint64_t, std::unique_ptr<HttpConnection>> httpConns_;

  std::atomic<bool> draining_{false};
  bool drainTimersArmed_ = false;

  /// /debug/queries state: running rows keyed by engine id plus a bounded
  /// ring of finished rows, newest first.
  static constexpr std::size_t kRecentQueries = 64;
  mutable std::mutex debugMutex_;
  std::map<QueryId, QueryDebugRow> runningQueries_;
  std::deque<QueryDebugRow> recentQueries_;

  obs::Gauge* connectionsGauge_ = nullptr;
  obs::Gauge* inflightGauges_[4] = {nullptr, nullptr, nullptr, nullptr};

  // Destroyed first (reverse member order): joining the workers before the
  // loop, connections, and admission state go away keeps their posts safe.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dsud::server
