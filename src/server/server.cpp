#include "server/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "core/health.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/recorder.hpp"

namespace dsud::server {

namespace {

const char* const kInflightAlgos[4] = {"naive", "dsud", "edsud", "topk"};

}  // namespace

QueryServer::QueryServer(QueryEngine& engine, obs::MetricsRegistry& metrics,
                         ServerConfig config)
    : engine_(engine),
      metrics_(metrics),
      config_(std::move(config)),
      admission_(config_.admission, &metrics_) {
  admission_.setBreakerProbe([this] { return breakerOpenFraction(); });
  admission_.setInflightProbe([this] { return engineInflight(); });
  connectionsGauge_ = &metrics_.gauge("dsud_server_connections");
  for (std::size_t i = 0; i < 4; ++i) {
    inflightGauges_[i] = &metrics_.gauge(
        obs::labeled("dsud_queries_inflight", {{"algo", kInflightAlgos[i]}}));
  }
  // Pre-register the request counters so every op shows as a zero series
  // from the first scrape.
  for (const char* op :
       {"query", "ping", "cancel", "stats", "admin", "invalid", "oversized"}) {
    metrics_.counter(obs::labeled("dsud_server_requests_total", {{"op", op}}));
  }
  // Likewise for the sharing-layer series: the batch executor is created
  // lazily on the first batched submit, but scrapes must see its counters
  // (and the cache's) as zero series from the start.
  metrics_.counter("dsud_batch_merged_total");
  metrics_.counter("dsud_batch_flushes_total");
  if (config_.cacheCapacity > 0) {
    ResultCacheConfig cacheConfig;
    cacheConfig.capacity = config_.cacheCapacity;
    cacheConfig.shards = std::max<std::size_t>(config_.cacheShards, 1);
    cache_ = std::make_unique<ResultCache>(cacheConfig, &metrics_);
    engine_.setResultCache(cache_.get());
  } else {
    // The series still exist so dashboards and the CI grep see them.
    metrics_.counter("dsud_cache_hits_total");
    metrics_.counter("dsud_cache_misses_total");
  }
}

QueryServer::~QueryServer() {
  // Flip every cancel flag so queued / running worker tasks unwind fast,
  // then join the pool (member order destroys it first anyway; the explicit
  // reset makes the dependency visible).  The loop is not running here, so
  // the workers' loop_.post() calls only append to the task list.
  for (auto& [id, conn] : conns_) conn->cancelAll();
  pool_.reset();
  // Workers are joined, so no query can touch the cache any more; detach it
  // before it is destroyed (the engine outlives the server).
  if (cache_ != nullptr) engine_.setResultCache(nullptr);
}

double QueryServer::breakerOpenFraction() {
  // Pin the view once: positional index/health() pairs could straddle a
  // concurrent membership change.
  const auto view = engine_.coordinator().view();
  if (view->partitions.empty()) return 0.0;
  std::size_t open = 0;
  for (const ReplicaChain& chain : view->partitions) {
    if (chain.health[0]->state() == SiteHealth::State::kOpen) ++open;
  }
  return static_cast<double>(open) /
         static_cast<double>(view->partitions.size());
}

double QueryServer::engineInflight() {
  double total = 0.0;
  for (const obs::Gauge* gauge : inflightGauges_) total += gauge->value();
  return total;
}

void QueryServer::countRequest(const char* op) {
  metrics_.counter(obs::labeled("dsud_server_requests_total", {{"op", op}}))
      .inc();
}

void QueryServer::start() {
  if (started_) return;
  started_ = true;
  listener_ = listenOn(config_.port, &port_);
  setNonBlocking(listener_.fd());
  httpListener_ = listenOn(config_.httpPort, &httpPort_);
  setNonBlocking(httpListener_.fd());
  loop_.add(listener_.fd(), EPOLLIN, [this](std::uint32_t) { acceptClients(); });
  loop_.add(httpListener_.fd(), EPOLLIN, [this](std::uint32_t) { acceptHttp(); });
  pool_ = std::make_unique<ThreadPool>(std::max<std::size_t>(config_.workers, 1));
}

void QueryServer::run() {
  start();
  loop_.run();
}

void QueryServer::stop() { loop_.stop(); }

void QueryServer::requestDrain() {
  loop_.post([this] { beginDrain(); });
}

// ---------------------------------------------------------------------------
// Accept paths

void QueryServer::acceptClients() {
  for (;;) {
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays registered
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const std::uint64_t connId = nextConnId_++;
    auto conn = std::make_unique<Connection>(
        connId, Socket(fd), config_.maxLineBytes, config_.maxOutboxBytes);
    conn->setLineHandler(
        [this, connId](std::string_view line) { handleLine(connId, line); });
    conn->setOversizeHandler([this, connId] {
      countRequest("oversized");
      sendError(connId, "", ErrorCode::kOversized,
                "request line exceeds " +
                    std::to_string(config_.maxLineBytes) + " bytes");
    });
    loop_.add(fd, EPOLLIN, [this, connId](std::uint32_t events) {
      handleClientEvent(connId, events);
    });
    conns_.emplace(connId, std::move(conn));
    connectionsGauge_->set(static_cast<double>(conns_.size()));
  }
}

void QueryServer::acceptHttp() {
  for (;;) {
    const int fd =
        ::accept4(httpListener_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    const std::uint64_t connId = nextConnId_++;
    auto conn = std::make_unique<HttpConnection>(connId, Socket(fd));
    loop_.add(fd, EPOLLIN, [this, connId](std::uint32_t events) {
      handleHttpEvent(connId, events);
    });
    httpConns_.emplace(connId, std::move(conn));
  }
}

// ---------------------------------------------------------------------------
// Client connections

void QueryServer::handleClientEvent(std::uint64_t connId,
                                    std::uint32_t events) {
  const auto it = conns_.find(connId);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (conn.defunct()) return;  // close already posted; ignore stale events
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    closeConnection(connId);
    return;
  }
  if ((events & EPOLLOUT) != 0 &&
      conn.onWritable() == Connection::IoResult::kClosed) {
    closeConnection(connId);
    return;
  }
  if ((events & EPOLLIN) != 0 &&
      conn.onReadable() == Connection::IoResult::kClosed) {
    closeConnection(connId);
    return;
  }
  // The line handler may itself have dropped the connection.
  const auto again = conns_.find(connId);
  if (again != conns_.end() && !again->second->defunct()) {
    updateInterest(*again->second);
  }
}

void QueryServer::updateInterest(Connection& conn) {
  loop_.modify(conn.fd(),
               EPOLLIN | (conn.wantsWrite() ? EPOLLOUT : 0u));
}

void QueryServer::dropConnection(std::uint64_t connId) {
  const auto it = conns_.find(connId);
  if (it == conns_.end() || it->second->defunct()) return;
  // This can run with the connection's own onReadable() frame on the stack
  // (line handler -> sendLine -> send() == kClosed), so never destroy the
  // Connection here: flag it so every handler skips it and defer the erase
  // until the dispatch loop has unwound.
  it->second->markDefunct();
  it->second->cancelAll();
  loop_.post([this, connId] { closeConnection(connId); });
}

void QueryServer::closeConnection(std::uint64_t connId) {
  const auto it = conns_.find(connId);
  if (it == conns_.end()) return;
  it->second->cancelAll();  // abandoned queries abort at their next round
  loop_.remove(it->second->fd());
  conns_.erase(it);
  connectionsGauge_->set(static_cast<double>(conns_.size()));
  if (draining_.load(std::memory_order_relaxed)) checkDrainDone();
}

void QueryServer::sendLine(std::uint64_t connId, const std::string& line) {
  const auto it = conns_.find(connId);
  if (it == conns_.end() || it->second->defunct()) {
    return;  // client went away; drop the response
  }
  if (it->second->send(line) == Connection::IoResult::kClosed) {
    dropConnection(connId);
    return;
  }
  updateInterest(*it->second);
}

void QueryServer::sendError(std::uint64_t connId, const std::string& requestId,
                            ErrorCode code, const std::string& message,
                            std::uint32_t retryAfterMs) {
  ErrorResponse response;
  response.id = requestId;
  response.code = code;
  response.message = message;
  response.retryAfterMs = retryAfterMs;
  sendLine(connId, encodeResponse(response));
}

void QueryServer::handleLine(std::uint64_t connId, std::string_view line) {
  if (line.empty()) return;  // blank keep-alive lines are fine
  Request request;
  try {
    request = decodeRequest(line);
  } catch (const ProtoError& error) {
    countRequest("invalid");
    sendError(connId, "", error.code(), error.what());
    return;
  }

  if (auto* query = std::get_if<QueryRequest>(&request)) {
    countRequest("query");
    handleQuery(connId, std::move(*query));
  } else if (std::holds_alternative<PingRequest>(request)) {
    countRequest("ping");
    sendLine(connId, encodeResponse(PongResponse{}));
  } else if (auto* cancel = std::get_if<CancelRequest>(&request)) {
    countRequest("cancel");
    const auto it = conns_.find(connId);
    if (it != conns_.end()) {
      if (auto token = it->second->findQuery(cancel->id)) {
        token->store(true, std::memory_order_relaxed);
      }
      // Unknown / already-finished ids are a no-op: the cancel raced the
      // query's terminal line, which the client is about to read anyway.
    }
  } else if (std::holds_alternative<StatsRequest>(request)) {
    countRequest("stats");
    StatsResponse stats;
    stats.active = admission_.active();
    stats.queued = admission_.queued();
    stats.admitted = admission_.admittedTotal();
    stats.shed = admission_.shedTotal();
    sendLine(connId, encodeResponse(stats));
  } else if (auto* admin = std::get_if<AdminRequest>(&request)) {
    countRequest("admin");
    handleAdmin(connId, std::move(*admin));
  }
}

void QueryServer::handleAdmin(std::uint64_t connId, AdminRequest request) {
  if (draining_.load(std::memory_order_relaxed)) {
    sendError(connId, request.id, ErrorCode::kUnavailable, "server draining");
    return;
  }
  const ServerConfig::AdminHooks& hooks = config_.admin;
  if (!hooks.addSite || !hooks.removeSite || !hooks.rebalance ||
      !hooks.topology) {
    sendError(connId, request.id, ErrorCode::kBadRequest,
              "admin operations are not wired on this server");
    return;
  }
  // Every action runs on a worker: mutating ops can stream the whole
  // database, and even the read-only snapshot serialises against a running
  // rebalance — neither may stall the event loop.
  try {
    pool_->submit([this, connId, request = std::move(request)]() mutable {
      runAdmin(connId, std::move(request));
    });
  } catch (const std::exception&) {
    sendError(connId, request.id, ErrorCode::kUnavailable,
              "server shutting down");
  }
}

void QueryServer::handleQuery(std::uint64_t connId, QueryRequest request) {
  if (draining_.load(std::memory_order_relaxed)) {
    sendError(connId, request.id, ErrorCode::kUnavailable, "server draining");
    return;
  }
  const auto it = conns_.find(connId);
  if (it == conns_.end() || it->second->defunct()) return;
  auto token = it->second->registerQuery(request.id);
  if (token == nullptr) {
    sendError(connId, request.id, ErrorCode::kBadRequest,
              "a query with this id is already in flight on this connection");
    return;
  }

  QueryJob job;
  job.connId = connId;
  job.cancel = std::move(token);
  job.request = std::move(request);

  const std::string tenant = job.request.tenant;
  const Priority priority = job.request.priority;
  const std::string requestId = job.request.id;

  AdmissionController::Shed shed;
  const auto outcome = admission_.submit(
      tenant, priority,
      [this, job = std::move(job)]() mutable {
        try {
          pool_->submit([this, job = std::move(job)]() mutable {
            runQuery(std::move(job));
          });
        } catch (const std::exception&) {
          // Shutdown race: a queued start dequeued by release() can land on
          // a pool whose destructor has already set stopping_.  Drop the
          // job and free its slot so the queue keeps draining instead of
          // the exception unwinding through release().
          admission_.release();
        }
      },
      &shed);
  if (outcome == AdmissionController::Outcome::kShed) {
    const auto conn = conns_.find(connId);
    if (conn != conns_.end()) conn->second->unregisterQuery(requestId);
    sendError(connId, requestId, shed.code, "load shed: " + shed.reason,
              shed.retryAfterMs);
  }
  // kAdmit / kQueue: the worker acks once execution actually begins.
}

// ---------------------------------------------------------------------------
// Worker side

QueryResult QueryServer::executeQuery(const QueryRequest& request,
                                      const QueryOptions& options,
                                      QueryId id) {
  if (request.k > 0) {
    TopKConfig config;
    config.k = request.k;
    config.floorQ = request.q;
    config.mask = request.mask;
    config.window = request.window;
    return engine_.runTopK(config, options, id);
  }
  QueryConfig config;
  config.q = request.q;
  config.mask = request.mask;
  config.window = request.window;
  if (config_.batching.enabled) {
    // Park in the batching window so concurrent compatible queries share
    // one descent.  The ticket blocks this worker exactly like a
    // synchronous run; answers still stream via options.progress.
    QueryOptions batched = options;
    batched.batching = config_.batching;
    return engine_.submitBatched(request.algo, std::move(config),
                                 std::move(batched), id)
        .get();
  }
  return engine_.run(request.algo, config, options, id);
}

void QueryServer::runQuery(QueryJob job) {
  const std::uint64_t connId = job.connId;
  const std::string requestId = job.request.id;

  // Cancelled while queued (disconnect or drain): never open a session.
  if (job.cancel->load(std::memory_order_relaxed)) {
    admission_.release();
    loop_.post([this, connId, requestId] {
      const auto it = conns_.find(connId);
      if (it != conns_.end()) it->second->unregisterQuery(requestId);
      sendError(connId, requestId, ErrorCode::kCancelled,
                "cancelled before execution");
      if (draining_.load(std::memory_order_relaxed)) checkDrainDone();
    });
    return;
  }

  const QueryId id = engine_.coordinator().nextQueryId();
  debugBegin(id, job.request);
  {
    AckResponse ack;
    ack.id = requestId;
    ack.query = id;
    std::string line = encodeResponse(ack);
    loop_.post([this, connId, line = std::move(line)] {
      sendLine(connId, line);
    });
  }

  QueryOptions options;
  options.cancel = job.cancel;
  options.traceCapacity = job.request.traceCapacity;
  options.fault.deadline = std::chrono::milliseconds(job.request.deadlineMs);
  options.fault.retry.maxAttempts = job.request.retries + 1;
  options.fault.onSiteFailure = job.request.degrade
                                    ? OnSiteFailure::kDegrade
                                    : OnSiteFailure::kFail;
  const std::uint64_t limit = job.request.limit;
  auto seq = std::make_shared<std::uint64_t>(0);
  if (job.request.progressive) {
    options.progress = [this, connId, requestId, limit, seq](
                           const GlobalSkylineEntry& entry,
                           const ProgressPoint&) {
      ++*seq;
      if (limit > 0 && *seq > limit) return;
      AnswerResponse answer;
      answer.id = requestId;
      answer.seq = *seq;
      answer.entry = entry;
      std::string line = encodeResponse(answer);
      loop_.post([this, connId, line = std::move(line)] {
        sendLine(connId, line);
      });
    };
  }

  std::string terminal;
  try {
    QueryResult result = executeQuery(job.request, options, id);
    // Top-k builds its answer list only at completion (entries can be
    // displaced while the queue drains), so nothing flows through the
    // progress callback mid-run; stream the final list here so progressive
    // clients see a uniform answer stream for every query shape.
    if (job.request.progressive && *seq == 0) {
      for (const GlobalSkylineEntry& entry : result.skyline) {
        ++*seq;
        if (limit > 0 && *seq > limit) break;
        AnswerResponse answer;
        answer.id = requestId;
        answer.seq = *seq;
        answer.entry = entry;
        std::string line = encodeResponse(answer);
        loop_.post([this, connId, line = std::move(line)] {
          sendLine(connId, line);
        });
      }
    }
    DoneResponse done;
    done.id = requestId;
    done.answers = result.skyline.size();
    done.degraded = result.degraded;
    done.excluded = result.excludedSites;
    done.stats = result.stats;
    // The profile is always collected; the flag only gates the wire block,
    // so answers stay bit-identical with profiling on or off.
    if (job.request.profile) done.profile = result.profile;
    terminal = encodeResponse(done);
    debugFinish(id, "done", &result);
  } catch (const QueryCancelled&) {
    terminal = encodeResponse(ErrorResponse{
        requestId, ErrorCode::kCancelled, "query cancelled", 0});
    debugFinish(id, "cancelled", nullptr);
  } catch (const NetError& error) {
    // Site unreachable / transport failure: the cluster, not the request.
    terminal = encodeResponse(ErrorResponse{
        requestId, ErrorCode::kUnavailable, error.what(), 0});
    debugFinish(id, "error", nullptr);
  } catch (const std::exception& error) {
    terminal = encodeResponse(ErrorResponse{
        requestId, ErrorCode::kInternal, error.what(), 0});
    debugFinish(id, "error", nullptr);
  }

  // Free the admission slot before the terminal line goes out: by the time
  // the client reads `done`, a follow-up query cannot be shed by the slot
  // its predecessor still holds.  release() may start a queued job on this
  // very thread — that is fine, the terminal post below is already built.
  admission_.release();
  loop_.post([this, connId, requestId, terminal = std::move(terminal)] {
    const auto it = conns_.find(connId);
    if (it != conns_.end()) it->second->unregisterQuery(requestId);
    sendLine(connId, terminal);
    if (draining_.load(std::memory_order_relaxed)) checkDrainDone();
  });
  loop_.wake();
}

void QueryServer::runAdmin(std::uint64_t connId, AdminRequest request) {
  std::string line;
  try {
    AdminResponse response;
    response.id = request.id;
    switch (request.action) {
      case AdminAction::kAddSite:
        response.site = config_.admin.addSite();
        break;
      case AdminAction::kRemoveSite:
        config_.admin.removeSite(request.site);
        break;
      case AdminAction::kRebalance:
        config_.admin.rebalance();
        break;
      case AdminAction::kTopology:
        break;
    }
    const Topology topology = config_.admin.topology();
    response.epoch = topology.epoch();
    response.members = topology.members();
    response.partitions = topology.partitions();
    line = encodeResponse(response);
  } catch (const std::out_of_range& error) {
    // Unknown member / last-member removal: the request, not the cluster.
    line = encodeResponse(
        ErrorResponse{request.id, ErrorCode::kBadRequest, error.what(), 0});
  } catch (const std::invalid_argument& error) {
    line = encodeResponse(
        ErrorResponse{request.id, ErrorCode::kBadRequest, error.what(), 0});
  } catch (const std::exception& error) {
    line = encodeResponse(
        ErrorResponse{request.id, ErrorCode::kInternal, error.what(), 0});
  }
  loop_.post([this, connId, line = std::move(line)] {
    sendLine(connId, line);
  });
  loop_.wake();
}

// ---------------------------------------------------------------------------
// HTTP endpoints

void QueryServer::handleHttpEvent(std::uint64_t connId, std::uint32_t events) {
  const auto it = httpConns_.find(connId);
  if (it == httpConns_.end()) return;
  HttpConnection& conn = *it->second;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    closeHttp(connId);
    return;
  }
  const HttpConnection::Handler handler =
      [this](std::string_view method, std::string_view path) {
        return httpRespond(method, path);
      };
  if ((events & EPOLLIN) != 0 &&
      conn.onReadable(handler) == HttpConnection::IoResult::kClosed) {
    closeHttp(connId);
    return;
  }
  if ((events & EPOLLOUT) != 0 &&
      conn.onWritable() == HttpConnection::IoResult::kClosed) {
    closeHttp(connId);
    return;
  }
  if (conn.wantsWrite()) loop_.modify(conn.fd(), EPOLLIN | EPOLLOUT);
}

void QueryServer::closeHttp(std::uint64_t connId) {
  const auto it = httpConns_.find(connId);
  if (it == httpConns_.end()) return;
  loop_.remove(it->second->fd());
  httpConns_.erase(it);
}

std::string QueryServer::httpRespond(std::string_view method,
                                     std::string_view path) {
  if (method != "GET") {
    return makeHttpResponse(405, "Method Not Allowed", "text/plain",
                            "method not allowed\n");
  }
  if (path == "/metrics") {
    return makeHttpResponse(200, "OK", obs::kPrometheusContentType,
                            obs::metricsToPrometheus(metrics_.snapshot()));
  }
  if (path == "/healthz") {
    if (draining_.load(std::memory_order_relaxed)) {
      return makeHttpResponse(503, "Service Unavailable", "text/plain",
                              "draining\n");
    }
    return makeHttpResponse(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/debug/queries") {
    return makeHttpResponse(200, "OK", "application/json",
                            debugQueriesJson() + "\n");
  }
  if (path == "/debug/topology") {
    return makeHttpResponse(200, "OK", "application/json",
                            debugTopologyJson() + "\n");
  }
  if (path == "/debug/cache") {
    return makeHttpResponse(200, "OK", "application/json",
                            debugCacheJson() + "\n");
  }
  if (path == "/debug/recorder") {
    return makeHttpResponse(200, "OK", "application/json",
                            debugRecorderJson() + "\n");
  }
  return makeHttpResponse(404, "Not Found", "text/plain", "not found\n");
}

// ---------------------------------------------------------------------------
// /debug introspection

void QueryServer::debugBegin(QueryId id, const QueryRequest& request) {
  QueryDebugRow row;
  row.query = id;
  row.requestId = request.id;
  row.tenant = request.tenant;
  row.algo = request.k > 0 ? "topk" : algoName(request.algo);
  row.startNs = obs::wallClockNs();
  std::lock_guard lock(debugMutex_);
  runningQueries_.emplace(id, std::move(row));
}

void QueryServer::debugFinish(QueryId id, const char* state,
                              const QueryResult* result) {
  std::lock_guard lock(debugMutex_);
  const auto it = runningQueries_.find(id);
  if (it == runningQueries_.end()) return;
  QueryDebugRow row = std::move(it->second);
  runningQueries_.erase(it);
  row.state = state;
  if (result != nullptr) {
    row.answers = result->skyline.size();
    row.seconds = result->stats.seconds;
    row.degraded = result->degraded;
    row.cache = result->profile.cache;
    row.batch = result->profile.batch;
    row.failovers = result->profile.failovers;
  } else {
    row.seconds =
        static_cast<double>(obs::wallClockNs() - row.startNs) / 1e9;
  }
  recentQueries_.push_front(std::move(row));
  while (recentQueries_.size() > kRecentQueries) recentQueries_.pop_back();
}

std::string QueryServer::debugQueriesJson() {
  const std::uint64_t nowNs = obs::wallClockNs();
  const auto debugRowToJson = [nowNs](const QueryDebugRow& row) {
    Json entry = Json::object();
    entry.set("query", row.query);
    entry.set("id", row.requestId);
    entry.set("tenant", row.tenant);
    entry.set("algo", row.algo);
    entry.set("state", row.state);
    entry.set("answers", row.answers);
    const bool running = row.state == "running";
    entry.set("seconds",
              running && nowNs > row.startNs
                  ? static_cast<double>(nowNs - row.startNs) / 1e9
                  : row.seconds);
    entry.set("degraded", row.degraded);
    if (!row.cache.empty()) entry.set("cache", row.cache);
    if (!row.batch.empty()) entry.set("batch", row.batch);
    entry.set("failovers", row.failovers);
    return entry;
  };
  Json doc = Json::object();
  Json running = Json::array();
  Json recent = Json::array();
  {
    std::lock_guard lock(debugMutex_);
    for (const auto& [id, row] : runningQueries_) {
      running.push(debugRowToJson(row));
    }
    for (const QueryDebugRow& row : recentQueries_) {
      recent.push(debugRowToJson(row));
    }
  }
  doc.set("running", std::move(running));
  doc.set("recent", std::move(recent));
  return doc.dump();
}

std::string QueryServer::debugTopologyJson() {
  const auto view = engine_.coordinator().view();
  Json doc = Json::object();
  doc.set("epoch", view->epoch);
  Json partitions = Json::array();
  std::size_t open = 0;
  for (const ReplicaChain& chain : view->partitions) {
    Json entry = Json::object();
    entry.set("partition", chain.partition);
    entry.set("replicas", chain.replicas.size());
    const SiteHealth::State state = chain.health[0]->state();
    const char* name = state == SiteHealth::State::kOpen       ? "open"
                       : state == SiteHealth::State::kHalfOpen ? "half_open"
                                                               : "closed";
    entry.set("breaker", name);
    if (state == SiteHealth::State::kOpen) ++open;
    partitions.push(std::move(entry));
  }
  doc.set("partitions", std::move(partitions));
  doc.set("breakers_open", open);
  return doc.dump();
}

std::string QueryServer::debugCacheJson() {
  Json doc = Json::object();
  doc.set("enabled", cache_ != nullptr);
  doc.set("capacity", cache_ != nullptr ? cache_->capacity() : 0);
  doc.set("size", cache_ != nullptr ? cache_->size() : 0);
  doc.set("hits", metrics_.counter("dsud_cache_hits_total").value());
  doc.set("misses", metrics_.counter("dsud_cache_misses_total").value());
  doc.set("batch_flushes",
          metrics_.counter("dsud_batch_flushes_total").value());
  doc.set("batch_merged", metrics_.counter("dsud_batch_merged_total").value());
  return doc.dump();
}

std::string QueryServer::debugRecorderJson() {
  const obs::FlightRecorder& recorder = obs::flightRecorder();
  Json doc = Json::object();
  doc.set("capacity", recorder.capacity());
  doc.set("recorded", recorder.recorded());
  doc.set("dumps", recorder.dumps());
  doc.set("window_s", recorder.windowSeconds());
  doc.set("dump_dir", recorder.dumpDir());
  Json events = Json::array();
  for (const obs::Event& event : recorder.snapshot()) {
    // Each retained event re-parsed from its own NDJSON rendering: the
    // /debug surface serves one well-formed JSON document, not raw lines.
    events.push(Json::parse(obs::eventToNdjson(event)));
  }
  doc.set("events", std::move(events));
  return doc.dump();
}

// ---------------------------------------------------------------------------
// Graceful drain

void QueryServer::beginDrain() {
  if (draining_.load(std::memory_order_relaxed)) return;
  draining_.store(true, std::memory_order_relaxed);
  // Stop accepting new query connections; the HTTP port stays up so
  // /healthz can report 503 while in-flight work finishes.
  if (listener_.valid()) {
    loop_.remove(listener_.fd());
    listener_.close();
  }
  checkDrainDone();
  if (!drainTimersArmed_) {
    drainTimersArmed_ = true;
    loop_.runAfter(config_.drainSeconds, [this] {
      // Grace period over: abort whatever is still running or queued.
      for (auto& [id, conn] : conns_) conn->cancelAll();
      // Cancelled queries unwind at their next round boundary; give them a
      // moment, then stop regardless (the destructor joins the workers).
      loop_.runAfter(1.0, [this] { loop_.stop(); });
    });
  }
}

void QueryServer::checkDrainDone() {
  if (!draining_.load(std::memory_order_relaxed)) return;
  if (admission_.active() == 0 && admission_.queued() == 0) {
    loop_.stop();
  }
}

}  // namespace dsud::server
