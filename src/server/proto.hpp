// The dsudd client protocol: line-delimited JSON over one TCP connection.
//
// Framing: every message is one JSON object on one line, terminated by
// '\n'.  The client sends requests; the server answers each request with
// one or more response lines correlated by the client-chosen `id`.  A
// `query` produces `ack`, zero or more streamed `answer` lines (progressive
// results, in engine emission order), and exactly one terminal line —
// `done` on success or `error` otherwise.  Requests on one connection may
// be pipelined; responses to different queries interleave freely (match on
// `id`).  Unknown JSON fields are ignored so clients can be newer than the
// server; unknown ops and malformed documents get an `error` response and
// the connection stays usable.
//
// This header is the codec only — pure functions between protocol structs
// and wire lines, shared by the daemon (src/server/server.cpp), the
// `dsudctl query --connect` client, and the round-trip tests.  See
// docs/PROTOCOL.md ("Client protocol") for the full schema and error codes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/result.hpp"
#include "core/topology.hpp"
#include "server/json.hpp"

namespace dsud::server {

// ---------------------------------------------------------------------------
// Error codes (stable wire strings; see errorCodeName)

enum class ErrorCode : std::uint8_t {
  kBadRequest,   ///< malformed JSON / schema violation / bad field value
  kUnknownOp,    ///< syntactically valid request with an unrecognised op
  kOversized,    ///< request line exceeded the server's line cap
  kOverloaded,   ///< shed by admission control; retry after `retry_after_ms`
  kUnavailable,  ///< cluster unhealthy (breakers open) or server draining
  kCancelled,    ///< query cancelled (client cancel op or disconnect)
  kInternal,     ///< query failed inside the engine
};

const char* errorCodeName(ErrorCode code) noexcept;
std::optional<ErrorCode> errorCodeFromName(std::string_view name) noexcept;

/// Schema violation discovered while decoding a request/response line.
/// Carries the code the responding `error` line should use.
class ProtoError : public std::runtime_error {
 public:
  ProtoError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

// ---------------------------------------------------------------------------
// Requests (client -> server)

/// Scheduling class of a query; high drains before normal before low when
/// admission queues (see server/admission.hpp).
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

const char* priorityName(Priority p) noexcept;

/// `{"op":"query", ...}` — one skyline / top-k / subspace / constrained
/// query.  Maps 1:1 onto QueryConfig / TopKConfig + the QueryOptions fault
/// and trace knobs.
struct QueryRequest {
  std::string id;           ///< client correlation id (required, <= 128 B)
  Algo algo = Algo::kEdsud; ///< ignored when k > 0 (top-k has one algorithm)
  double q = 0.3;           ///< threshold; floor for top-k (`floor_q`)
  std::size_t k = 0;        ///< > 0 switches to the top-k extension
  DimMask mask = 0;         ///< dominance subspace; 0 = all dimensions
  std::optional<Rect> window;  ///< constrained-region skyline
  std::string tenant = "default";
  Priority priority = Priority::kNormal;
  std::uint32_t deadlineMs = 0;  ///< per-RPC deadline (QueryOptions::fault)
  std::uint32_t retries = 0;     ///< extra attempts per RPC
  bool degrade = false;          ///< on_failure: "degrade" instead of "fail"
  bool progressive = true;       ///< stream `answer` lines as answers emit
  std::uint64_t limit = 0;       ///< cap streamed answers (0 = unlimited)
  std::uint32_t traceCapacity = 0;  ///< > 0 records a protocol timeline
  /// Attach the EXPLAIN/ANALYZE profile block to the `done` response.  The
  /// profile is collected either way; this only controls the wire — answers
  /// are bit-identical with it on or off.
  bool profile = false;

  friend bool operator==(const QueryRequest&, const QueryRequest&) = default;
};

struct PingRequest {
  friend bool operator==(const PingRequest&, const PingRequest&) = default;
};

/// Cancels the in-flight query with the given client id on this connection.
struct CancelRequest {
  std::string id;
  friend bool operator==(const CancelRequest&, const CancelRequest&) = default;
};

/// Server-side admission counters (debugging / load tooling).
struct StatsRequest {
  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
};

/// Elastic-cluster membership operations (wire strings mirror the `dsudctl
/// admin` subcommands).
enum class AdminAction : std::uint8_t {
  kAddSite,     ///< "add-site": join a fresh member (no data until rebalance)
  kRemoveSite,  ///< "remove-site": drain a member's partitions and drop it
  kRebalance,   ///< "rebalance": repartition the database over the members
  kTopology,    ///< "topology": read-only membership / placement snapshot
};

const char* adminActionName(AdminAction action) noexcept;

/// `{"op":"admin", "action":...}` — one membership operation.  Every action
/// answers with an `admin` response describing the resulting topology;
/// mutating actions run on a worker so a background rebalance never blocks
/// the event loop (queries keep flowing meanwhile).
struct AdminRequest {
  std::string id;  ///< client correlation id (required, <= 128 B)
  AdminAction action = AdminAction::kTopology;
  SiteId site = kNoSite;  ///< required for remove-site; ignored otherwise
  friend bool operator==(const AdminRequest&, const AdminRequest&) = default;
};

using Request = std::variant<QueryRequest, PingRequest, CancelRequest,
                             StatsRequest, AdminRequest>;

/// Decodes one request line (without its '\n').  Throws ProtoError with the
/// code the `error` response should carry: kBadRequest for malformed JSON /
/// schema violations, kUnknownOp for an unrecognised op.
Request decodeRequest(std::string_view line);

std::string encodeRequest(const QueryRequest& request);
std::string encodeRequest(const PingRequest&);
std::string encodeRequest(const CancelRequest& request);
std::string encodeRequest(const StatsRequest&);
std::string encodeRequest(const AdminRequest& request);

// ---------------------------------------------------------------------------
// Responses (server -> client)

/// `{"type":"ack"}` — the query was admitted (possibly after queueing) and
/// assigned an engine session id.
struct AckResponse {
  std::string id;
  QueryId query = kNoQuery;  ///< engine session id (joins server/site traces)
  friend bool operator==(const AckResponse&, const AckResponse&) = default;
};

/// `{"type":"answer"}` — one progressive result, in emission order.
struct AnswerResponse {
  std::string id;
  std::uint64_t seq = 0;  ///< 1-based emission index
  GlobalSkylineEntry entry;
  friend bool operator==(const AnswerResponse&, const AnswerResponse&) =
      default;
};

/// `{"type":"done"}` — the query completed; terminal for its id.
struct DoneResponse {
  std::string id;
  std::uint64_t answers = 0;  ///< total answers (>= streamed `answer` lines)
  bool degraded = false;
  std::vector<SiteId> excluded;
  QueryStats stats;
  /// EXPLAIN/ANALYZE block, present only when the request set `profile`
  /// (see docs/PROTOCOL.md "Profile block").
  std::optional<QueryProfile> profile;
  friend bool operator==(const DoneResponse&, const DoneResponse&) = default;
};

/// `{"type":"error"}` — terminal failure for its id (or a request-level
/// error with an empty id when the line had none).
struct ErrorResponse {
  std::string id;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  std::uint32_t retryAfterMs = 0;  ///< only meaningful for kOverloaded
  friend bool operator==(const ErrorResponse&, const ErrorResponse&) = default;
};

struct PongResponse {
  friend bool operator==(const PongResponse&, const PongResponse&) = default;
};

struct StatsResponse {
  std::uint64_t active = 0;    ///< admitted queries currently executing
  std::uint64_t queued = 0;    ///< waiting for an admission slot
  std::uint64_t admitted = 0;  ///< lifetime admissions
  std::uint64_t shed = 0;      ///< lifetime load-shed requests
  friend bool operator==(const StatsResponse&, const StatsResponse&) = default;
};

/// `{"type":"admin"}` — the topology after (or, for `topology`, instead of)
/// the requested membership change; terminal for its id.
struct AdminResponse {
  std::string id;
  std::uint64_t epoch = 0;       ///< membership epoch of the reported layout
  std::vector<SiteId> members;   ///< members in ring order
  std::vector<PartitionDesc> partitions;  ///< partitions, ordered by id
  SiteId site = kNoSite;  ///< id of the member just added (add-site only)
  friend bool operator==(const AdminResponse&, const AdminResponse&) = default;
};

using Response =
    std::variant<AckResponse, AnswerResponse, DoneResponse, ErrorResponse,
                 PongResponse, StatsResponse, AdminResponse>;

/// Decodes one response line; throws ProtoError(kBadRequest) on anything
/// that is not a well-formed response object.
Response decodeResponse(std::string_view line);

std::string encodeResponse(const AckResponse& response);
std::string encodeResponse(const AnswerResponse& response);
std::string encodeResponse(const DoneResponse& response);
std::string encodeResponse(const ErrorResponse& response);
std::string encodeResponse(const PongResponse&);
std::string encodeResponse(const StatsResponse& response);
std::string encodeResponse(const AdminResponse& response);

}  // namespace dsud::server
