// Monotonic wall-clock stopwatch used for progressiveness and update-latency
// measurements (paper Figs. 12–14).
#pragma once

#include <chrono>

namespace dsud {

/// Started on construction; `elapsed*()` reads do not stop it.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  double elapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsedMillis() const noexcept { return elapsedSeconds() * 1e3; }
  double elapsedMicros() const noexcept { return elapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dsud
