#include "common/serialize.hpp"

namespace dsud {

void ByteWriter::putBytes(std::span<const std::byte> bytes) {
  putU32(static_cast<std::uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::putString(std::string_view s) {
  putU32(static_cast<std::uint32_t>(s.size()));
  const auto* data = reinterpret_cast<const std::byte*>(s.data());
  buf_.insert(buf_.end(), data, data + s.size());
}

void ByteWriter::putF64Vector(std::span<const double> v) {
  putU32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) putF64(x);
}

std::uint8_t ByteReader::getU8() {
  require(1);
  return std::to_integer<std::uint8_t>(bytes_[pos_++]);
}

std::vector<std::byte> ByteReader::getBytes() {
  const std::uint32_t n = getU32();
  require(n);
  std::vector<std::byte> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             bytes_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::getString() {
  const std::uint32_t n = getU32();
  require(n);
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::vector<double> ByteReader::getF64Vector() {
  const std::uint32_t n = getU32();
  require(static_cast<std::size_t>(n) * sizeof(double));
  std::vector<double> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(getF64());
  return out;
}

void ByteReader::expectEnd() const {
  if (!atEnd()) {
    throw SerializeError("ByteReader: " + std::to_string(remaining()) +
                         " trailing bytes after message");
  }
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw SerializeError("ByteReader: truncated input (need " +
                         std::to_string(n) + " bytes, have " +
                         std::to_string(remaining()) + ")");
  }
}

}  // namespace dsud
