// Tiny configuration helpers shared by benches and examples.
//
// Bench binaries must run with no arguments (`for b in build/bench/*; do $b;
// done`), so scale knobs come from the environment: DSUD_N, DSUD_REPEATS,
// DSUD_SEED, DSUD_SCALE=paper.  Examples additionally accept `--key=value`
// flags parsed by ArgParser.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dsud {

/// Environment lookup with typed fallback.  Returns `fallback` when the
/// variable is unset or unparsable.
std::int64_t envOr(const char* name, std::int64_t fallback);
double envOr(const char* name, double fallback);
std::string envOr(const char* name, const std::string& fallback);

/// Parses `--key=value` / `--flag` style arguments.  Unknown positional
/// arguments are collected in order.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(std::string_view key) const;
  std::string get(std::string_view key, std::string fallback) const;
  std::int64_t getInt(std::string_view key, std::int64_t fallback) const;
  double getDouble(std::string_view key, double fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> options_;
  std::vector<std::string> positional_;
};

}  // namespace dsud
