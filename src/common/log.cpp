#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <string>

namespace dsud {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* levelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void setLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logMessage(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) return;
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[dsud ";
  line += levelTag(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

namespace detail {

LogLine::~LogLine() {
  if (enabled()) logMessage(level_, stream_.str());
}

}  // namespace detail
}  // namespace dsud
