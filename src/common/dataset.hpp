// Flat, cache-friendly storage for an uncertain database.
//
// An uncertain database (paper Sec. 3, Fig. 2) is a multiset of d-dimensional
// tuples, each carrying an existential probability P(t) in (0, 1].  Storage is
// row-major in one contiguous buffer so a 2M-tuple database costs exactly
// N * d doubles + N probabilities + N ids, with no per-tuple allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace dsud {

/// Globally unique tuple identifier.  Ids are assigned by generators and are
/// stable across partitioning and network shipping.
using TupleId = std::uint64_t;

/// Identifier of a local site; the coordinator is not a site.
using SiteId = std::uint32_t;

/// Sentinel for "no site" (e.g. a tuple that only lives at the coordinator).
inline constexpr SiteId kNoSite = static_cast<SiteId>(-1);

/// Non-owning view of a single uncertain tuple.
struct TupleRef {
  TupleId id = 0;
  std::span<const double> values;
  double prob = 0.0;
};

/// Owning uncertain tuple (used on the wire and in protocol state).
struct Tuple {
  TupleId id = 0;
  std::vector<double> values;
  double prob = 0.0;

  Tuple() = default;
  Tuple(TupleId tupleId, std::vector<double> coords, double p)
      : id(tupleId), values(std::move(coords)), prob(p) {}
  explicit Tuple(const TupleRef& ref)
      : id(ref.id), values(ref.values.begin(), ref.values.end()), prob(ref.prob) {}

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

class Dataset;

/// Column-major (structure-of-arrays) snapshot of a Dataset, shaped for the
/// `kernel/` dominance and survival-product primitives.
///
/// Each dimension is one contiguous, 64-byte-aligned `double` array padded to
/// a multiple of `kBlock` rows; the existential probabilities and the derived
/// `log1p(-P)` column share the layout.  Padding rows carry +infinity
/// coordinates (they can never dominate anything) and zero probability /
/// log-survival, so kernels may always process whole blocks with no tail
/// handling.  The view is an immutable copy: mutating the source Dataset
/// afterwards does not invalidate it.
class DatasetView {
 public:
  /// Rows per SIMD block (4 doubles = one AVX2 vector).
  static constexpr std::size_t kBlock = 4;
  /// Alignment of every column, in bytes (one cache line).
  static constexpr std::size_t kAlign = 64;

  DatasetView() = default;
  explicit DatasetView(const Dataset& data);

  std::size_t dims() const noexcept { return dims_; }
  std::size_t size() const noexcept { return size_; }
  /// size() rounded up to a kBlock multiple; the extent of every column.
  std::size_t paddedSize() const noexcept { return padded_; }

  /// Column of dimension `j` (aligned, paddedSize() entries).
  const double* col(std::size_t j) const noexcept {
    return buffer_.get() + j * padded_;
  }
  /// Array of dims() column pointers (the kernel-facing handle).
  const double* const* cols() const noexcept { return colPtrs_.data(); }
  /// Existential probabilities (aligned, padding entries are 0).
  const double* prob() const noexcept { return buffer_.get() + dims_ * padded_; }
  /// log1p(-P(t)) per row (-inf where P == 1; padding entries are 0) — the
  /// log-space survival summand.
  const double* logSurv() const noexcept {
    return buffer_.get() + (dims_ + 1) * padded_;
  }
  std::span<const TupleId> ids() const noexcept { return ids_; }

 private:
  struct AlignedFree {
    void operator()(double* p) const noexcept;
  };

  std::size_t dims_ = 0;
  std::size_t size_ = 0;
  std::size_t padded_ = 0;
  // One aligned allocation holding dims_ value columns, then prob, then
  // logSurv (each padded_ doubles; padded_ * 8 is a kAlign multiple, so every
  // column stays aligned).
  std::unique_ptr<double[], AlignedFree> buffer_;
  std::vector<const double*> colPtrs_;
  std::vector<TupleId> ids_;
};

/// Flat row-major uncertain database.
///
/// Invariants: every row has exactly `dims()` values; `prob(row)` is in
/// (0, 1]; ids are unique within the dataset.  Rows are index-stable except
/// across `eraseRow`, which swap-removes (documented below) — long-lived
/// references should hold `TupleId`s, not row indices.
class Dataset {
 public:
  /// Creates an empty dataset of the given dimensionality (>= 1).
  explicit Dataset(std::size_t dims);

  std::size_t dims() const noexcept { return dims_; }
  std::size_t size() const noexcept { return probs_.size(); }
  bool empty() const noexcept { return probs_.empty(); }

  /// Appends a tuple with an explicit id.  Throws std::invalid_argument on
  /// dimension mismatch, out-of-range probability, or duplicate id.
  std::size_t add(TupleId id, std::span<const double> values, double prob);

  /// Appends a tuple, assigning the next unused sequential id.
  std::size_t add(std::span<const double> values, double prob);

  /// Appends a copy of `t`.
  std::size_t add(const Tuple& t) { return add(t.id, t.values, t.prob); }

  std::span<const double> values(std::size_t row) const noexcept;
  double prob(std::size_t row) const noexcept { return probs_[row]; }
  TupleId id(std::size_t row) const noexcept { return ids_[row]; }
  TupleRef at(std::size_t row) const noexcept;
  Tuple tuple(std::size_t row) const { return Tuple(at(row)); }

  /// Row index currently holding `id`, if present.
  std::optional<std::size_t> rowOf(TupleId id) const;

  /// Removes a row by swapping the last row into its place.  O(1); the row
  /// index of the previously-last tuple changes.
  void eraseRow(std::size_t row);

  /// Removes the tuple with the given id.  Returns false if absent.
  bool eraseId(TupleId id);

  /// Reserves capacity for `n` tuples.
  void reserve(std::size_t n);

  /// Builds a column-major kernel-ready snapshot of the current contents.
  /// O(N · d); the view stays valid after the Dataset mutates or dies.
  DatasetView view() const { return DatasetView(*this); }

 private:
  std::size_t dims_;
  std::vector<double> flat_;    // row-major, size() * dims_
  std::vector<double> probs_;   // existential probabilities
  std::vector<TupleId> ids_;
  std::unordered_map<TupleId, std::size_t> rowOf_;
  TupleId nextId_ = 0;
};

}  // namespace dsud
