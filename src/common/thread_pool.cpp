#include "common/thread_pool.hpp"

#include <stdexcept>

namespace dsud {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace dsud
