// Portable little-endian binary (de)serialisation.
//
// All protocol messages and wire formats in `src/net` are built on these two
// primitives.  Encoding is explicit little-endian byte packing (independent of
// host endianness), doubles travel as their IEEE-754 bit patterns, and the
// reader throws on underflow so malformed frames cannot cause reads past the
// buffer.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dsud {

/// Error thrown by ByteReader when a frame is truncated or malformed.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends primitive values to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserveBytes) { buf_.reserve(reserveBytes); }

  void putU8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  void putU16(std::uint16_t v) { putLittleEndian(v); }
  void putU32(std::uint32_t v) { putLittleEndian(v); }
  void putU64(std::uint64_t v) { putLittleEndian(v); }

  void putF64(double v) { putU64(std::bit_cast<std::uint64_t>(v)); }

  void putBool(bool v) { putU8(v ? 1 : 0); }

  /// Length-prefixed byte blob (u32 length).
  void putBytes(std::span<const std::byte> bytes);

  /// Length-prefixed UTF-8 string (u32 length).
  void putString(std::string_view s);

  /// Length-prefixed vector of doubles (u32 count).
  void putF64Vector(std::span<const double> v);

  std::span<const std::byte> bytes() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }
  std::vector<std::byte> take() && { return std::move(buf_); }
  void clear() noexcept { buf_.clear(); }

 private:
  template <typename T>
  void putLittleEndian(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }

  std::vector<std::byte> buf_;
};

/// Reads primitive values from a byte span; throws SerializeError on
/// underflow or impossible lengths.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint8_t getU8();
  std::uint16_t getU16() { return getLittleEndian<std::uint16_t>(); }
  std::uint32_t getU32() { return getLittleEndian<std::uint32_t>(); }
  std::uint64_t getU64() { return getLittleEndian<std::uint64_t>(); }
  double getF64() { return std::bit_cast<double>(getU64()); }
  bool getBool() { return getU8() != 0; }

  std::vector<std::byte> getBytes();
  std::string getString();
  std::vector<double> getF64Vector();

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool atEnd() const noexcept { return remaining() == 0; }

  /// Throws unless the whole buffer has been consumed; call at the end of a
  /// message decode to catch trailing garbage.
  void expectEnd() const;

 private:
  template <typename T>
  T getLittleEndian() {
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(std::to_integer<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const;

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace dsud
