#include "common/options.hpp"

#include <cstdlib>

namespace dsud {

std::int64_t envOr(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return v;
}

double envOr(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return v;
}

std::string envOr(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return raw;
}

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.substr(0, 2) == "--") {
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        options_.emplace(std::string(arg), "true");
      } else {
        options_.emplace(std::string(arg.substr(0, eq)),
                         std::string(arg.substr(eq + 1)));
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool ArgParser::has(std::string_view key) const {
  return options_.find(key) != options_.end();
}

std::string ArgParser::get(std::string_view key, std::string fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return it->second;
}

std::int64_t ArgParser::getInt(std::string_view key,
                               std::int64_t fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return fallback;
  return v;
}

double ArgParser::getDouble(std::string_view key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return fallback;
  return v;
}

}  // namespace dsud
