// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in this repository (data generators, probability
// assignment, partitioning, update streams) draws from an explicitly seeded
// `Rng`, so any experiment can be replayed bit-for-bit.  The engine is
// xoshiro256++ (Blackman & Vigna), which is small, fast, and has no measurable
// bias in the 53-bit double outputs we rely on.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dsud {

/// Deterministic 64-bit PRNG (xoshiro256++) with convenience distributions.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can also be plugged
/// into `<random>` distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from `seed` via SplitMix64, so nearby seeds still give
  /// statistically independent streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  std::uint64_t next() noexcept;
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound).  Requires bound > 0.  Unbiased
  /// (Lemire's rejection method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Standard normal via Marsaglia polar method (cached spare value).
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Uniform existential probability in (0, 1]: the paper requires strictly
  /// positive occurrence probabilities.
  double existentialUniform() noexcept;

  /// Derives an independent child stream; children with distinct tags are
  /// decorrelated from each other and from the parent.
  Rng split(std::uint64_t tag) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  double spareGaussian_ = 0.0;
  bool hasSpareGaussian_ = false;
};

}  // namespace dsud
