#include "common/dataset.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dsud {

Dataset::Dataset(std::size_t dims) : dims_(dims) {
  if (dims == 0) throw std::invalid_argument("Dataset: dims must be >= 1");
}

std::size_t Dataset::add(TupleId id, std::span<const double> values,
                         double prob) {
  if (values.size() != dims_) {
    throw std::invalid_argument("Dataset::add: expected " +
                                std::to_string(dims_) + " values, got " +
                                std::to_string(values.size()));
  }
  if (!(prob > 0.0) || prob > 1.0) {
    throw std::invalid_argument("Dataset::add: probability must be in (0, 1]");
  }
  if (!rowOf_.emplace(id, probs_.size()).second) {
    throw std::invalid_argument("Dataset::add: duplicate id " +
                                std::to_string(id));
  }
  flat_.insert(flat_.end(), values.begin(), values.end());
  probs_.push_back(prob);
  ids_.push_back(id);
  nextId_ = std::max(nextId_, id + 1);
  return probs_.size() - 1;
}

std::size_t Dataset::add(std::span<const double> values, double prob) {
  return add(nextId_, values, prob);
}

std::span<const double> Dataset::values(std::size_t row) const noexcept {
  return {flat_.data() + row * dims_, dims_};
}

TupleRef Dataset::at(std::size_t row) const noexcept {
  return TupleRef{ids_[row], values(row), probs_[row]};
}

std::optional<std::size_t> Dataset::rowOf(TupleId id) const {
  auto it = rowOf_.find(id);
  if (it == rowOf_.end()) return std::nullopt;
  return it->second;
}

void Dataset::eraseRow(std::size_t row) {
  if (row >= size()) throw std::out_of_range("Dataset::eraseRow");
  const std::size_t last = size() - 1;
  rowOf_.erase(ids_[row]);
  if (row != last) {
    std::copy_n(flat_.data() + last * dims_, dims_, flat_.data() + row * dims_);
    probs_[row] = probs_[last];
    ids_[row] = ids_[last];
    rowOf_[ids_[row]] = row;
  }
  flat_.resize(last * dims_);
  probs_.pop_back();
  ids_.pop_back();
}

bool Dataset::eraseId(TupleId id) {
  auto it = rowOf_.find(id);
  if (it == rowOf_.end()) return false;
  eraseRow(it->second);
  return true;
}

void Dataset::reserve(std::size_t n) {
  flat_.reserve(n * dims_);
  probs_.reserve(n);
  ids_.reserve(n);
  rowOf_.reserve(n);
}

}  // namespace dsud
