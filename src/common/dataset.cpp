#include "common/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <stdexcept>
#include <string>

namespace dsud {

// ---------------------------------------------------------------------------
// DatasetView

void DatasetView::AlignedFree::operator()(double* p) const noexcept {
  std::free(p);
}

DatasetView::DatasetView(const Dataset& data)
    : dims_(data.dims()), size_(data.size()) {
  // Round the column extent up so every column is both a whole number of
  // kBlock SIMD groups and kAlign bytes long (8 doubles = 64 bytes).
  constexpr std::size_t kRowRound = kAlign / sizeof(double);
  static_assert(kRowRound % kBlock == 0);
  padded_ = (size_ + kRowRound - 1) / kRowRound * kRowRound;
  if (padded_ == 0) padded_ = kRowRound;  // keep col()/prob() dereferenceable

  const std::size_t doubles = (dims_ + 2) * padded_;
  void* raw = std::aligned_alloc(kAlign, doubles * sizeof(double));
  if (raw == nullptr) throw std::bad_alloc();
  buffer_.reset(static_cast<double*>(raw));

  constexpr double kPad = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < dims_; ++j) {
    double* column = buffer_.get() + j * padded_;
    for (std::size_t row = 0; row < size_; ++row) {
      column[row] = data.values(row)[j];
    }
    std::fill(column + size_, column + padded_, kPad);
  }
  double* probCol = buffer_.get() + dims_ * padded_;
  double* logCol = buffer_.get() + (dims_ + 1) * padded_;
  for (std::size_t row = 0; row < size_; ++row) {
    const double p = data.prob(row);
    probCol[row] = p;
    // -inf when P == 1: a certain dominator zeroes the survival product.
    logCol[row] = std::log1p(-p);
  }
  std::fill(probCol + size_, probCol + padded_, 0.0);
  std::fill(logCol + size_, logCol + padded_, 0.0);

  colPtrs_.resize(dims_);
  for (std::size_t j = 0; j < dims_; ++j) colPtrs_[j] = col(j);
  ids_.resize(size_);
  for (std::size_t row = 0; row < size_; ++row) ids_[row] = data.id(row);
}

// ---------------------------------------------------------------------------
// Dataset

Dataset::Dataset(std::size_t dims) : dims_(dims) {
  if (dims == 0) throw std::invalid_argument("Dataset: dims must be >= 1");
}

std::size_t Dataset::add(TupleId id, std::span<const double> values,
                         double prob) {
  if (values.size() != dims_) {
    throw std::invalid_argument("Dataset::add: expected " +
                                std::to_string(dims_) + " values, got " +
                                std::to_string(values.size()));
  }
  if (!(prob > 0.0) || prob > 1.0) {
    throw std::invalid_argument("Dataset::add: probability must be in (0, 1]");
  }
  if (!rowOf_.emplace(id, probs_.size()).second) {
    throw std::invalid_argument("Dataset::add: duplicate id " +
                                std::to_string(id));
  }
  flat_.insert(flat_.end(), values.begin(), values.end());
  probs_.push_back(prob);
  ids_.push_back(id);
  nextId_ = std::max(nextId_, id + 1);
  return probs_.size() - 1;
}

std::size_t Dataset::add(std::span<const double> values, double prob) {
  return add(nextId_, values, prob);
}

std::span<const double> Dataset::values(std::size_t row) const noexcept {
  return {flat_.data() + row * dims_, dims_};
}

TupleRef Dataset::at(std::size_t row) const noexcept {
  return TupleRef{ids_[row], values(row), probs_[row]};
}

std::optional<std::size_t> Dataset::rowOf(TupleId id) const {
  auto it = rowOf_.find(id);
  if (it == rowOf_.end()) return std::nullopt;
  return it->second;
}

void Dataset::eraseRow(std::size_t row) {
  if (row >= size()) throw std::out_of_range("Dataset::eraseRow");
  const std::size_t last = size() - 1;
  rowOf_.erase(ids_[row]);
  if (row != last) {
    std::copy_n(flat_.data() + last * dims_, dims_, flat_.data() + row * dims_);
    probs_[row] = probs_[last];
    ids_[row] = ids_[last];
    rowOf_[ids_[row]] = row;
  }
  flat_.resize(last * dims_);
  probs_.pop_back();
  ids_.pop_back();
}

bool Dataset::eraseId(TupleId id) {
  auto it = rowOf_.find(id);
  if (it == rowOf_.end()) return false;
  eraseRow(it->second);
  return true;
}

void Dataset::reserve(std::size_t n) {
  flat_.reserve(n * dims_);
  probs_.reserve(n);
  ids_.reserve(n);
  rowOf_.reserve(n);
}

}  // namespace dsud
