// Minimal leveled logger.
//
// The library itself logs nothing at Info or below on hot paths; logging is
// used by examples, benches, and the TCP transport for operational events.
#pragma once

#include <sstream>
#include <string_view>

namespace dsud {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level (default kInfo).  Thread-safe.
void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

/// Emits one line to stderr with a level tag; thread-safe (single write call).
void logMessage(LogLevel level, std::string_view msg);

namespace detail {

/// Stream-style builder: `LogLine(LogLevel::kInfo) << "x=" << x;` emits on
/// destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled()) stream_ << v;
    return *this;
  }

  bool enabled() const noexcept {
    return static_cast<int>(level_) >= static_cast<int>(logLevel());
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace dsud

#define DSUD_LOG(level) ::dsud::detail::LogLine(::dsud::LogLevel::level)
