#include "common/io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/serialize.hpp"
#include "geometry/dominance.hpp"  // kMaxDims

namespace dsud {
namespace {

constexpr char kMagic[4] = {'D', 'S', 'U', 'D'};

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw IoError(what + ": " + path);
}

}  // namespace

void saveDatasetBinary(const Dataset& data, const std::string& path) {
  ByteWriter w(32 + data.size() * (16 + data.dims() * 8));
  for (const char c : kMagic) w.putU8(static_cast<std::uint8_t>(c));
  w.putU32(kDatasetFormatVersion);
  w.putU32(static_cast<std::uint32_t>(data.dims()));
  w.putU64(data.size());
  for (std::size_t row = 0; row < data.size(); ++row) {
    w.putU64(data.id(row));
    w.putF64(data.prob(row));
    for (const double v : data.values(row)) w.putF64(v);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("saveDatasetBinary: cannot open", path);
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.size()));
  if (!out) fail("saveDatasetBinary: write failed", path);
}

Dataset loadDatasetBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("loadDatasetBinary: cannot open", path);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  if (in.bad()) fail("loadDatasetBinary: read failed", path);

  try {
    ByteReader r(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
    for (const char c : kMagic) {
      if (r.getU8() != static_cast<std::uint8_t>(c)) {
        fail("loadDatasetBinary: bad magic", path);
      }
    }
    const std::uint32_t version = r.getU32();
    if (version != kDatasetFormatVersion) {
      fail("loadDatasetBinary: unsupported version " + std::to_string(version),
           path);
    }
    const std::uint32_t dims = r.getU32();
    if (dims == 0 || dims > kMaxDims) {
      fail("loadDatasetBinary: dims out of range", path);
    }
    const std::uint64_t count = r.getU64();

    Dataset data(dims);
    data.reserve(count);
    std::vector<double> values(dims);
    for (std::uint64_t i = 0; i < count; ++i) {
      const TupleId id = r.getU64();
      const double prob = r.getF64();
      for (std::uint32_t j = 0; j < dims; ++j) values[j] = r.getF64();
      data.add(id, values, prob);  // validates probability and uniqueness
    }
    r.expectEnd();
    return data;
  } catch (const SerializeError& e) {
    fail(std::string("loadDatasetBinary: ") + e.what(), path);
  } catch (const std::invalid_argument& e) {
    fail(std::string("loadDatasetBinary: ") + e.what(), path);
  }
}

void saveDatasetCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) fail("saveDatasetCsv: cannot open", path);
  out << "id,prob";
  for (std::size_t j = 0; j < data.dims(); ++j) out << ",v" << j;
  out << '\n';
  out.precision(17);
  for (std::size_t row = 0; row < data.size(); ++row) {
    out << data.id(row) << ',' << data.prob(row);
    for (const double v : data.values(row)) out << ',' << v;
    out << '\n';
  }
  if (!out) fail("saveDatasetCsv: write failed", path);
}

Dataset loadDatasetCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("loadDatasetCsv: cannot open", path);

  std::string line;
  std::size_t lineNo = 0;
  std::vector<std::vector<double>> rows;
  std::vector<TupleId> ids;
  std::vector<double> probs;
  std::size_t dims = 0;

  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::stringstream fields(line);
    std::string field;
    std::vector<std::string> parts;
    while (std::getline(fields, field, ',')) parts.push_back(field);
    if (parts.size() < 3) {
      fail("loadDatasetCsv: line " + std::to_string(lineNo) +
               " needs id,prob,values...",
           path);
    }

    char* end = nullptr;
    errno = 0;
    const unsigned long long id = std::strtoull(parts[0].c_str(), &end, 10);
    if (end == parts[0].c_str() || *end != '\0' || errno == ERANGE) {
      if (lineNo == 1) continue;  // header line
      fail("loadDatasetCsv: bad id at line " + std::to_string(lineNo), path);
    }

    std::vector<double> numeric;
    numeric.reserve(parts.size() - 1);
    for (std::size_t i = 1; i < parts.size(); ++i) {
      end = nullptr;
      const double v = std::strtod(parts[i].c_str(), &end);
      if (end == parts[i].c_str() || *end != '\0') {
        fail("loadDatasetCsv: bad number at line " + std::to_string(lineNo),
             path);
      }
      numeric.push_back(v);
    }

    if (dims == 0) {
      dims = numeric.size() - 1;
      if (dims == 0 || dims > kMaxDims) {
        fail("loadDatasetCsv: dims out of range", path);
      }
    } else if (numeric.size() - 1 != dims) {
      fail("loadDatasetCsv: ragged row at line " + std::to_string(lineNo),
           path);
    }
    ids.push_back(id);
    probs.push_back(numeric[0]);
    rows.emplace_back(numeric.begin() + 1, numeric.end());
  }
  if (in.bad()) fail("loadDatasetCsv: read failed", path);
  if (dims == 0) fail("loadDatasetCsv: no data rows", path);

  Dataset data(dims);
  data.reserve(rows.size());
  try {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      data.add(ids[i], rows[i], probs[i]);
    }
  } catch (const std::invalid_argument& e) {
    fail(std::string("loadDatasetCsv: ") + e.what(), path);
  }
  return data;
}

}  // namespace dsud
