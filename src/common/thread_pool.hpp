// Minimal fixed-size thread pool.
//
// Used by the coordinator's parallel feedback broadcast: the m−1 evaluate
// RPCs of one Server-Delivery phase are independent (each touches one site),
// so they can run concurrently; results are still reduced in site order so
// every query stays bit-for-bit deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dsud {

class ThreadPool {
 public:
  /// Starts `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Schedules `task`; the returned future delivers its result or exception.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::logic_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    ready_.notify_one();
    return future;
  }

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dsud
