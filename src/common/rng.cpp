#include "common/rng.hpp"

#include <cmath>

namespace dsud {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // All-zero state would be a fixed point; splitmix64 cannot produce four
  // zero words from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::gaussian() noexcept {
  if (hasSpareGaussian_) {
    hasSpareGaussian_ = false;
    return spareGaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spareGaussian_ = v * factor;
  hasSpareGaussian_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

double Rng::existentialUniform() noexcept {
  // 1 - U[0,1) lies in (0, 1].
  return 1.0 - uniform();
}

Rng Rng::split(std::uint64_t tag) noexcept {
  // Mix the tag into a fresh seed derived from this stream, so children do
  // not share output with the parent or with siblings.
  const std::uint64_t seed = next() ^ (tag * 0xd1342543de82ef95ULL);
  return Rng(seed);
}

}  // namespace dsud
