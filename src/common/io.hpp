// Dataset persistence: a compact binary format and CSV import/export.
//
// Binary layout (little-endian): magic "DSUD", u32 version, u32 dims,
// u64 count, then per tuple: u64 id, f64 prob, dims x f64 values.  The
// loader validates the header and every probability, so a truncated or
// corrupt file fails loudly instead of yielding a half-read database.
//
// CSV layout: optional header line, then `id,prob,v0,v1,...` rows.  The
// importer skips a non-numeric first line, accepts scientific notation, and
// reports the offending line number on malformed input.
#pragma once

#include <stdexcept>
#include <string>

#include "common/dataset.hpp"

namespace dsud {

/// Error raised on any load/save failure (I/O or format).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Current binary format version.
inline constexpr std::uint32_t kDatasetFormatVersion = 1;

void saveDatasetBinary(const Dataset& data, const std::string& path);
Dataset loadDatasetBinary(const std::string& path);

void saveDatasetCsv(const Dataset& data, const std::string& path);
Dataset loadDatasetCsv(const std::string& path);

}  // namespace dsud
