// Figure 10 (paper Sec. 7.3): bandwidth vs the probability threshold
// q = 0.3..0.9 (d = 3, m = 60), Independent and Anticorrelated.
#include "bench_util.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

void runPanel(const Scale& scale, ValueDistribution dist, char panel) {
  printTitle(std::string("Fig. 10") + panel + ": bandwidth vs threshold q (" +
             distributionName(dist) + ")");
  printHeader({"q", "DSUD", "e-DSUD", "|SKY|"});

  const Dataset global =
      generateSynthetic(SyntheticSpec{scale.n, 3, dist, scale.seed + 100});
  for (const double q : {0.3, 0.5, 0.7, 0.9}) {
    QueryConfig config;
    config.q = q;
    const Point dsud = averagePoint(global, scale.m, scale.repeats,
                                    Algo::kDsud, config, scale.seed);
    const Point edsud = averagePoint(global, scale.m, scale.repeats,
                                     Algo::kEdsud, config, scale.seed);
    char label[8];
    std::snprintf(label, sizeof(label), "%.1f", q);
    printRow(std::string(label), dsud.tuples, edsud.tuples, edsud.skyline);
  }
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  runPanel(scale, ValueDistribution::kIndependent, 'a');
  runPanel(scale, ValueDistribution::kAnticorrelated, 'b');
  return 0;
}
