// Microbenchmarks M1 + ablation A3: PR-tree construction, maintenance, and
// the two dominance-product query paths (aggregate descent vs the paper's
// enumerating window query).
#include <benchmark/benchmark.h>

#include "gen/synthetic.hpp"
#include "index/prtree.hpp"

namespace {

using namespace dsud;

Dataset makeData(std::size_t n, std::size_t dims) {
  return generateSynthetic(
      SyntheticSpec{n, dims, ValueDistribution::kIndependent, 9001});
}

void BM_BulkLoad(benchmark::State& state) {
  const Dataset data = makeData(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    PRTree tree = PRTree::bulkLoad(data);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DynamicInsert(benchmark::State& state) {
  const Dataset data = makeData(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    PRTree tree(3);
    for (std::size_t row = 0; row < data.size(); ++row) {
      tree.insert(data.id(row), data.values(row), data.prob(row));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DynamicInsert)->Arg(1000)->Arg(10000);

void BM_Erase(benchmark::State& state) {
  const Dataset data = makeData(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    state.PauseTiming();
    PRTree tree = PRTree::bulkLoad(data);
    state.ResumeTiming();
    for (std::size_t row = 0; row < data.size(); ++row) {
      std::vector<double> v(data.values(row).begin(), data.values(row).end());
      tree.erase(data.id(row), v);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Erase)->Arg(1000)->Arg(10000);

void BM_DominanceSurvivalAggregate(benchmark::State& state) {
  const Dataset data = makeData(static_cast<std::size_t>(state.range(0)), 3);
  const PRTree tree = PRTree::bulkLoad(data);
  Rng rng(7);
  std::vector<std::array<double, 3>> probes(256);
  for (auto& p : probes) {
    for (auto& x : p) x = rng.uniform();
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = probes[i++ & 255];
    benchmark::DoNotOptimize(
        tree.dominanceSurvival(std::span<const double>(p.data(), 3)));
  }
}
BENCHMARK(BM_DominanceSurvivalAggregate)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_DominanceSurvivalEnumerate(benchmark::State& state) {
  // Ablation A3: the paper's window-query formulation — enumerate every
  // dominating tuple and multiply (Sec. 6.3, Fig. 6).
  const Dataset data = makeData(static_cast<std::size_t>(state.range(0)), 3);
  const PRTree tree = PRTree::bulkLoad(data);
  Rng rng(7);
  std::vector<std::array<double, 3>> probes(256);
  for (auto& p : probes) {
    for (auto& x : p) x = rng.uniform();
  }
  std::size_t i = 0;
  const DimMask mask = fullMask(3);
  for (auto _ : state) {
    const auto& p = probes[i++ & 255];
    double survival = 1.0;
    tree.forEachDominating(std::span<const double>(p.data(), 3), mask,
                           [&](const PRTree::LeafEntry& e) {
                             survival *= 1.0 - e.prob;
                           });
    benchmark::DoNotOptimize(survival);
  }
}
BENCHMARK(BM_DominanceSurvivalEnumerate)->Arg(10000)->Arg(100000);

void BM_WindowQuery(benchmark::State& state) {
  const Dataset data = makeData(static_cast<std::size_t>(state.range(0)), 3);
  const PRTree tree = PRTree::bulkLoad(data);
  Rect window(3);
  const std::array<double, 3> lo = {0.2, 0.2, 0.2};
  const std::array<double, 3> hi = {0.4, 0.4, 0.4};
  window.expand(lo);
  window.expand(hi);
  for (auto _ : state) {
    std::size_t count = 0;
    tree.windowQuery(window, [&](const PRTree::LeafEntry&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_WindowQuery)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
