// Figure 13 (paper Sec. 7.5): progressiveness on the NYSE trace, with
// tuple uncertainty following the uniform (13a/13c) and Gaussian
// (μ = 0.5, σ = 0.2; 13b/13d) probability models.
#include "bench_util.hpp"

#include "gen/probability.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

void printCurves(const QueryResult& dsud, const QueryResult& edsud) {
  printHeader({"reported", "DSUD tuples", "e-DSUD tuples", "DSUD ms",
               "e-DSUD ms"});
  const std::size_t total =
      std::max(dsud.progress.size(), edsud.progress.size());
  if (total == 0) {
    std::printf("(no qualified skyline tuples)\n");
    return;
  }
  const auto at = [](const std::vector<ProgressPoint>& curve,
                     std::size_t k) -> ProgressPoint {
    if (curve.empty()) return {};
    return curve[std::min(k, curve.size() - 1)];
  };
  const std::size_t steps = std::min<std::size_t>(10, total);
  for (std::size_t s = 1; s <= steps; ++s) {
    const std::size_t k = s * total / steps;
    const ProgressPoint d = at(dsud.progress, k - 1);
    const ProgressPoint e = at(edsud.progress, k - 1);
    printRow(std::to_string(k), static_cast<double>(d.tuplesShipped),
             static_cast<double>(e.tuplesShipped), d.seconds * 1e3,
             e.seconds * 1e3);
  }
}

void runPanel(const Scale& scale, const ProbSampler& probs,
              const std::string& label) {
  printTitle("Fig. 13: NYSE progressiveness (" + label + ")");
  const Dataset trace =
      generateNyse(NyseSpec{scale.n, scale.seed + 130}, probs);
  QueryConfig config;
  config.q = scale.q;

  InProcCluster cluster(Topology::uniform(trace, scale.m, scale.seed + 131));
  const QueryResult dsud = cluster.engine().runDsud(config);
  const QueryResult edsud = cluster.engine().runEdsud(config);
  printCurves(dsud, edsud);
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  runPanel(scale, uniformProbability(), "uniform probabilities");
  runPanel(scale, gaussianProbability(0.5, 0.2),
           "gaussian probabilities, mu=0.5 sigma=0.2");
  return 0;
}
