// Figure 8 (paper Sec. 7.1): total bandwidth consumption (tuples shipped)
// as a function of dimensionality d = 2..5, for Independent (Fig. 8a) and
// Anticorrelated (Fig. 8b) data, comparing DSUD, e-DSUD, and the Ceiling:
// the minimum cost of any exact protocol in this family — every answer must
// reach H once and be verified at the other m−1 sites, so Ceiling =
// |SKY| · m (the paper's "optimal technique which could not be achieved in
// practice"; it reports e-DSUD within ~3x of it).
#include "bench_util.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

void runPanel(const Scale& scale, ValueDistribution dist, char panel) {
  printTitle(std::string("Fig. 8") + panel + ": bandwidth vs dimensionality (" +
             distributionName(dist) + ")");
  printHeader({"d", "DSUD", "e-DSUD", "Ceiling", "|SKY|", "eDSUD/Ceil"});

  QueryConfig config;
  config.q = scale.q;
  for (std::size_t d = 2; d <= 5; ++d) {
    const Dataset global = generateSynthetic(
        SyntheticSpec{scale.n, d, dist, scale.seed + d});
    const Point dsud = averagePoint(global, scale.m, scale.repeats,
                                    Algo::kDsud, config, scale.seed);
    const Point edsud = averagePoint(global, scale.m, scale.repeats,
                                     Algo::kEdsud, config, scale.seed);
    const double ceiling = edsud.skyline * static_cast<double>(scale.m);
    printRow(std::to_string(d), dsud.tuples, edsud.tuples, ceiling,
             edsud.skyline, edsud.tuples / ceiling);
  }
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  runPanel(scale, ValueDistribution::kIndependent, 'a');
  runPanel(scale, ValueDistribution::kAnticorrelated, 'b');
  return 0;
}
