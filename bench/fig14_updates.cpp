// Figure 14 (paper Sec. 7.6): update performance.  Response time per update
// (time until SKY(H) is exact again) as a function of the update rate
// (20%..100% of a base update batch), comparing the Incremental maintenance
// strategy against the Naive restart, on Independent and Anticorrelated
// data.  Updates are a 50/50 insert/delete mix at random sites.
//
// Maintenance involves a from-scratch e-DSUD per update in the naive
// strategy, so this bench uses a reduced default scale:
//   DSUD_UPD_N (default 20000), DSUD_UPD_M (default 20),
//   DSUD_UPD_BATCH (default 100 updates at rate 100%).
#include "bench_util.hpp"

#include "core/updates.hpp"
#include "gen/partition.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

struct UpdScale {
  std::size_t n;
  std::size_t m;
  std::size_t batch;
};

UpdScale updScale() {
  UpdScale s;
  s.n = static_cast<std::size_t>(envOr("DSUD_UPD_N", std::int64_t(20000)));
  s.m = static_cast<std::size_t>(envOr("DSUD_UPD_M", std::int64_t(20)));
  s.batch = static_cast<std::size_t>(envOr("DSUD_UPD_BATCH", std::int64_t(100)));
  return s;
}

std::vector<UpdateEvent> makeStream(const std::vector<Dataset>& sites,
                                    std::size_t count, std::uint64_t seed) {
  // Pre-plan the stream against a mirror so deletes always hit live tuples.
  std::vector<Dataset> mirror;
  for (const Dataset& s : sites) {
    Dataset copy(s.dims());
    for (std::size_t row = 0; row < s.size(); ++row) {
      const TupleRef t = s.at(row);
      copy.add(t.id, t.values, t.prob);
    }
    mirror.push_back(std::move(copy));
  }
  Rng rng(seed);
  TupleId nextId = 10'000'000;
  std::vector<UpdateEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    UpdateEvent e;
    if (rng.uniform() < 0.5) {
      e.kind = UpdateEvent::Kind::kInsert;
      e.site = static_cast<SiteId>(rng.below(mirror.size()));
      e.tuple = Tuple{nextId++, {rng.uniform(), rng.uniform(), rng.uniform()},
                      rng.existentialUniform()};
      mirror[e.site].add(e.tuple.id, e.tuple.values, e.tuple.prob);
    } else {
      SiteId site = static_cast<SiteId>(rng.below(mirror.size()));
      while (mirror[site].empty()) {
        site = static_cast<SiteId>(rng.below(mirror.size()));
      }
      const std::size_t row = rng.below(mirror[site].size());
      const TupleRef t = mirror[site].at(row);
      e.kind = UpdateEvent::Kind::kDelete;
      e.site = site;
      e.tuple = Tuple{t.id, std::vector<double>(t.values.begin(),
                                                t.values.end()),
                      t.prob};
      mirror[site].eraseRow(row);
    }
    events.push_back(std::move(e));
  }
  return events;
}

void runPanel(const Scale& scale, const UpdScale& upd,
              ValueDistribution dist) {
  printTitle(std::string("Fig. 14: update response time (") +
             distributionName(dist) + ")");
  printHeader({"rate %", "updates", "Incr ms/upd", "Naive ms/upd",
               "Incr tup/upd", "Naive tup/upd"});

  const Dataset global =
      generateSynthetic(SyntheticSpec{upd.n, 3, dist, scale.seed + 140});
  Rng partitionRng(scale.seed + 141);
  const auto siteData = partitionUniform(global, upd.m, partitionRng);

  QueryConfig config;
  config.q = scale.q;

  for (const std::size_t rate : {20u, 40u, 60u, 80u, 100u}) {
    const std::size_t count = upd.batch * rate / 100;
    const auto events = makeStream(siteData, count, scale.seed + rate);

    double seconds[2] = {0.0, 0.0};
    double tuples[2] = {0.0, 0.0};
    const MaintenanceStrategy strategies[2] = {
        MaintenanceStrategy::kIncremental,
        MaintenanceStrategy::kNaiveRecompute};
    for (int s = 0; s < 2; ++s) {
      InProcCluster cluster(Topology::fromPartitions(siteData));
      SkylineMaintainer maintainer(cluster.coordinator(), config,
                                   strategies[s]);
      maintainer.initialize();
      for (const UpdateEvent& e : events) {
        const UpdateStats stats = maintainer.apply(e);
        seconds[s] += stats.seconds;
        tuples[s] += static_cast<double>(stats.tuplesShipped);
      }
    }
    const auto d = static_cast<double>(count);
    printRow(std::to_string(rate), std::to_string(count),
             seconds[0] / d * 1e3, seconds[1] / d * 1e3, tuples[0] / d,
             tuples[1] / d);
  }
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  const UpdScale upd = updScale();
  std::printf("update scale: N=%zu, m=%zu, batch=%zu\n", upd.n, upd.m,
              upd.batch);
  runPanel(scale, upd, ValueDistribution::kIndependent);
  runPanel(scale, upd, ValueDistribution::kAnticorrelated);
  return 0;
}
