// Tracing overhead (acceptance gate for the cross-site tracing work): wall
// time of the fig09-style workload with tracing fully off, with the default
// coordinator-only trace, and with each site-trace shipping mode.  The
// "off" and "coord" columns must stay within noise of each other — the
// disabled path is one branch per protocol step — while "piggyback" and
// "fetch" show the real cost of recording and shipping site spans.
//
// Columns are mean seconds per query; "spans" is the merged span count of
// the last piggyback run (0 until site tracing is on).
#include "bench_util.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

struct Mode {
  const char* label;
  std::size_t traceCapacity;
  SiteTraceMode siteTrace;
};

constexpr Mode kModes[] = {
    {"off", 0, SiteTraceMode::kOff},
    {"coord", 65536, SiteTraceMode::kOff},
    {"piggyback", 65536, SiteTraceMode::kPiggyback},
    {"fetch", 65536, SiteTraceMode::kFetch},
};

double meanSeconds(const Dataset& global, std::size_t m, std::size_t repeats,
                   Algo algo, const QueryConfig& config, const Mode& mode,
                   std::uint64_t seed, std::size_t* spans) {
  QueryOptions options;
  options.traceCapacity = mode.traceCapacity;
  options.siteTrace = mode.siteTrace;
  double seconds = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    InProcCluster cluster(Topology::uniform(global, m, seed + r * 7919), ClusterConfig{.metrics = &metricsRegistry()});
    const QueryResult result = runAlgo(cluster.engine(), algo, config, options);
    seconds += result.stats.seconds;
    *spans = result.trace.events.size();
  }
  return seconds / static_cast<double>(repeats);
}

void runPanel(const Scale& scale, Algo algo) {
  printTitle(std::string("Tracing overhead: ") + algoName(algo) +
             " wall time by trace mode");
  printHeader({"mode", "ms", "vs off %", "spans"});

  QueryConfig config;
  config.q = scale.q;
  const Dataset global = generateSynthetic(SyntheticSpec{
      scale.n, 3, ValueDistribution::kAnticorrelated, scale.seed + 90});

  double baseline = 0.0;
  for (const Mode& mode : kModes) {
    std::size_t spans = 0;
    const double seconds = meanSeconds(global, scale.m, scale.repeats, algo,
                                       config, mode, scale.seed, &spans);
    if (mode.traceCapacity == 0) baseline = seconds;
    const double pct = baseline > 0.0 ? 100.0 * seconds / baseline : 100.0;
    printRow(mode.label, seconds * 1e3, pct, static_cast<double>(spans));
  }
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  runPanel(scale, Algo::kDsud);
  runPanel(scale, Algo::kEdsud);
  return 0;
}
