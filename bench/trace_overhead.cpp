// Tracing overhead (acceptance gate for the cross-site tracing work): wall
// time of the fig09-style workload with tracing fully off, with the default
// coordinator-only trace, and with each site-trace shipping mode.  The
// "off" and "coord" columns must stay within noise of each other — the
// disabled path is one branch per protocol step — while "piggyback" and
// "fetch" show the real cost of recording and shipping site spans.
//
// Columns are mean seconds per query; "spans" is the merged span count of
// the last piggyback run (0 until site tracing is on).
//
// A second panel measures the structured event log and flight recorder the
// same way: "silent" raises the level gate so every emit is one atomic
// load, "detached" renders events into an empty sink list, "recorder" is
// the default-on configuration (events retained in the ring).  Set
// DSUD_OBS_JSON=<path> to also write the recorder panel as a JSON summary
// (the committed BENCH_obs2_baseline.json was produced that way).
#include "bench_util.hpp"
#include "obs/log.hpp"
#include "obs/recorder.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

struct Mode {
  const char* label;
  std::size_t traceCapacity;
  SiteTraceMode siteTrace;
};

constexpr Mode kModes[] = {
    {"off", 0, SiteTraceMode::kOff},
    {"coord", 65536, SiteTraceMode::kOff},
    {"piggyback", 65536, SiteTraceMode::kPiggyback},
    {"fetch", 65536, SiteTraceMode::kFetch},
};

double meanSeconds(const Dataset& global, std::size_t m, std::size_t repeats,
                   Algo algo, const QueryConfig& config, const Mode& mode,
                   std::uint64_t seed, std::size_t* spans) {
  QueryOptions options;
  options.traceCapacity = mode.traceCapacity;
  options.siteTrace = mode.siteTrace;
  double seconds = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    InProcCluster cluster(Topology::uniform(global, m, seed + r * 7919), ClusterConfig{.metrics = &metricsRegistry()});
    const QueryResult result = runAlgo(cluster.engine(), algo, config, options);
    seconds += result.stats.seconds;
    *spans = result.trace.events.size();
  }
  return seconds / static_cast<double>(repeats);
}

void runPanel(const Scale& scale, Algo algo) {
  printTitle(std::string("Tracing overhead: ") + algoLabel(algo) +
             " wall time by trace mode");
  printHeader({"mode", "ms", "vs off %", "spans"});

  QueryConfig config;
  config.q = scale.q;
  const Dataset global = generateSynthetic(SyntheticSpec{
      scale.n, 3, ValueDistribution::kAnticorrelated, scale.seed + 90});

  double baseline = 0.0;
  for (const Mode& mode : kModes) {
    std::size_t spans = 0;
    const double seconds = meanSeconds(global, scale.m, scale.repeats, algo,
                                       config, mode, scale.seed, &spans);
    if (mode.traceCapacity == 0) baseline = seconds;
    const double pct = baseline > 0.0 ? 100.0 * seconds / baseline : 100.0;
    printRow(mode.label, seconds * 1e3, pct, static_cast<double>(spans));
  }
}

// ---------------------------------------------------------------------------
// Event log / flight recorder overhead

struct ObsMode {
  const char* label;
  bool recorderAttached;
  LogLevel level;
};

constexpr ObsMode kObsModes[] = {
    {"silent", false, LogLevel::kError},
    {"detached", false, LogLevel::kInfo},
    {"recorder", true, LogLevel::kInfo},
};

struct ObsLeg {
  std::string label;
  double seconds = 0.0;
  double pct = 100.0;
  std::uint64_t eventsRecorded = 0;
};

void applyObsMode(const ObsMode& mode) {
  obs::EventLog& log = obs::eventLog();  // attaches the recorder on first use
  log.setLevel(mode.level);
  log.removeSink(&obs::flightRecorder());
  if (mode.recorderAttached) {
    // The global recorder outlives the log; attach it non-owning.
    log.addSink(std::shared_ptr<obs::EventSink>(&obs::flightRecorder(),
                                                [](obs::EventSink*) {}));
  }
}

std::vector<ObsLeg> runObsPanel(const Scale& scale, Algo algo) {
  printTitle(std::string("Recorder overhead: ") + algoLabel(algo) +
             " wall time by event-log mode");
  printHeader({"mode", "ms", "vs silent %", "events"});

  QueryConfig config;
  config.q = scale.q;
  const Dataset global = generateSynthetic(SyntheticSpec{
      scale.n, 3, ValueDistribution::kAnticorrelated, scale.seed + 91});

  std::vector<ObsLeg> legs;
  double baseline = 0.0;
  for (const ObsMode& mode : kObsModes) {
    applyObsMode(mode);
    const std::uint64_t before = obs::flightRecorder().recorded();
    double seconds = 0.0;
    for (std::size_t r = 0; r < scale.repeats; ++r) {
      InProcCluster cluster(
          Topology::uniform(global, scale.m, scale.seed + r * 7919),
          ClusterConfig{.metrics = &metricsRegistry()});
      const QueryResult result = runAlgo(cluster.engine(), algo, config);
      seconds += result.stats.seconds;
    }
    seconds /= static_cast<double>(scale.repeats);
    if (baseline == 0.0) baseline = seconds;
    ObsLeg leg;
    leg.label = mode.label;
    leg.seconds = seconds;
    leg.pct = baseline > 0.0 ? 100.0 * seconds / baseline : 100.0;
    leg.eventsRecorded = obs::flightRecorder().recorded() - before;
    legs.push_back(leg);
    printRow(leg.label, seconds * 1e3, leg.pct,
             static_cast<double>(leg.eventsRecorded));
  }
  // Leave the process in the default-on state for anything that follows.
  applyObsMode(kObsModes[2]);
  return legs;
}

void writeObsJson(const std::string& path, const Scale& scale,
                  const std::vector<std::pair<std::string, std::vector<ObsLeg>>>&
                      panels) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for JSON output\n",
                 path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n \"note\": \"Flight recorder / event log overhead: mean "
               "wall seconds per query by event-log mode (silent = level "
               "gate closed, detached = events rendered to no sinks, "
               "recorder = default-on ring). Produced by "
               "bench/trace_overhead with DSUD_OBS_JSON.\",\n");
  std::fprintf(f,
               " \"scale\": {\"n\": %zu, \"m\": %zu, \"q\": %.3f, "
               "\"repeats\": %zu, \"seed\": %llu},\n \"panels\": {\n",
               scale.n, scale.m, scale.q, scale.repeats,
               static_cast<unsigned long long>(scale.seed));
  for (std::size_t p = 0; p < panels.size(); ++p) {
    std::fprintf(f, "  \"%s\": [\n", panels[p].first.c_str());
    const auto& legs = panels[p].second;
    for (std::size_t i = 0; i < legs.size(); ++i) {
      std::fprintf(f,
                   "   {\"mode\": \"%s\", \"ms\": %.4f, \"vs_silent_pct\": "
                   "%.2f, \"events\": %llu}%s\n",
                   legs[i].label.c_str(), legs[i].seconds * 1e3, legs[i].pct,
                   static_cast<unsigned long long>(legs[i].eventsRecorded),
                   i + 1 < legs.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", p + 1 < panels.size() ? "," : "");
  }
  std::fprintf(f, " }\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  runPanel(scale, Algo::kDsud);
  runPanel(scale, Algo::kEdsud);

  std::vector<std::pair<std::string, std::vector<ObsLeg>>> panels;
  panels.emplace_back("DSUD", runObsPanel(scale, Algo::kDsud));
  panels.emplace_back("e-DSUD", runObsPanel(scale, Algo::kEdsud));
  const std::string obsJson = envOr("DSUD_OBS_JSON", std::string{});
  if (!obsJson.empty()) writeObsJson(obsJson, scale, panels);
  return 0;
}
