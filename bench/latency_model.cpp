// Response-time model under network delay (the paper's Sec. 1 motivation:
// "network delay incurred ... it is often very expensive to communicate").
//
// The bandwidth benches count tuples; this bench converts a measured
// protocol execution into wall-clock estimates under per-RPC round-trip
// times, for two execution disciplines:
//
//   sequential — every RPC waits for the previous one:
//                  T = roundTrips · RTT
//   pipelined  — the m−1 evaluate RPCs of one feedback phase run in
//                parallel (QueryOptions::broadcastThreads), prepares and
//                initial pulls batch likewise:
//                  T ≈ (2 + candidatesPulled + broadcasts) · RTT
//                (one RTT per To-Server pull, one per feedback phase, plus
//                 one parallel prepare and one parallel initial-pull round)
//
// The model makes the trade-offs visible: the naive baseline is a single
// bulk round (cheap in RTTs, catastrophic in bytes), DSUD pays an RTT per
// candidate, e-DSUD removes both tuples *and* feedback rounds.
#include "bench_util.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

struct Model {
  double sequentialRounds;
  double pipelinedRounds;
  double tuples;
};

Model measure(QueryEngine& engine, Algo algo, const QueryConfig& config,
              std::size_t m) {
  const QueryResult result = runAlgo(engine, algo, config);
  Model model;
  model.tuples = static_cast<double>(result.stats.tuplesShipped);
  model.sequentialRounds = static_cast<double>(result.stats.roundTrips);
  if (algo == Algo::kNaive) {
    // One parallel ship-all round.
    model.pipelinedRounds = 1.0;
  } else {
    model.pipelinedRounds =
        2.0 + static_cast<double>(result.stats.candidatesPulled -
                                  std::min<std::size_t>(
                                      result.stats.candidatesPulled, m)) +
        static_cast<double>(result.stats.broadcasts);
  }
  return model;
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);

  const Dataset global = generateSynthetic(SyntheticSpec{
      scale.n, 3, ValueDistribution::kIndependent, scale.seed + 180});

  printTitle("Latency model: estimated response time (d = 3, m = " +
             std::to_string(scale.m) + ")");
  printHeader({"algo", "tuples", "seq rounds", "pipe rounds", "seq@10ms s",
               "pipe@10ms s"});

  for (const Algo algo : {Algo::kNaive, Algo::kDsud, Algo::kEdsud}) {
    InProcCluster cluster(Topology::uniform(global, scale.m, scale.seed));
    QueryConfig config;
    config.q = scale.q;
    const Model model = measure(cluster.engine(), algo, config, scale.m);
    printRow(std::string(algoLabel(algo)), model.tuples,
             model.sequentialRounds, model.pipelinedRounds,
             model.sequentialRounds * 0.010, model.pipelinedRounds * 0.010);
  }

  printTitle("Latency model: e-DSUD pipelined response time vs RTT");
  printHeader({"RTT ms", "naive s", "DSUD s", "e-DSUD s"});
  double rounds[3] = {0, 0, 0};
  {
    int i = 0;
    for (const Algo algo : {Algo::kNaive, Algo::kDsud, Algo::kEdsud}) {
      InProcCluster cluster(Topology::uniform(global, scale.m, scale.seed));
      QueryConfig config;
      config.q = scale.q;
      rounds[i++] =
          measure(cluster.engine(), algo, config, scale.m).pipelinedRounds;
    }
  }
  for (const double rttMs : {1.0, 10.0, 50.0, 200.0}) {
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f", rttMs);
    printRow(std::string(label), rounds[0] * rttMs * 1e-3,
             rounds[1] * rttMs * 1e-3, rounds[2] * rttMs * 1e-3);
  }
  std::printf(
      "\n(naive wins on rounds but ships the whole database; the paper's "
      "bandwidth metric and this RTT model bracket the design space.)\n");
  return 0;
}
