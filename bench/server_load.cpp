// Open-loop load benchmark for the dsudd query server.
//
// Starts an in-process QueryServer over a synthetic cluster, then offers
// load at several fixed request rates regardless of how fast the server
// answers (open loop — the arrival schedule never backs off, so queueing
// and shedding behaviour is visible instead of being hidden by a closed
// loop's self-throttling).  Each level reports completed/shed counts, the
// achieved completion rate, and end-to-end latency percentiles measured
// from socket write to terminal (`done`/`error`) line.
//
// Runs standalone with no arguments; scale comes from the environment:
//
//   DSUD_N                  tuples in the synthetic set   (default 8000)
//   DSUD_M                  local sites                   (default 8)
//   DSUD_Q                  probability threshold         (default 0.3)
//   DSUD_SEED               RNG seed                      (default 2010)
//   DSUD_LOAD_QPS           comma-separated offered rates (default 4,16,64,256)
//   DSUD_LOAD_SECONDS       duration per level            (default 2)
//   DSUD_LOAD_CONNS         client connections            (default 4)
//   DSUD_LOAD_MAX_INFLIGHT  server admission cap          (default 8)
//   DSUD_LOAD_MAX_QUEUED    server admission queue        (default 16)
//   DSUD_JSON               also write a JSON summary to this path
//
// A second, closed-loop section measures the shared-work layer: bursts of
// concurrent clients issuing threshold queries with the result cache and
// batch executor off, then on, for an identical mix (every client the same
// query) and a banded mix (thresholds spread across four q bands).  Its
// knobs:
//
//   DSUD_BURST_CLIENTS      concurrent burst clients      (default 64)
//   DSUD_BURST_PER_CLIENT   pipelined queries per client  (default 4)
//   DSUD_BATCH_WINDOW_MS    batching window when sharing  (default 5)
//   DSUD_BATCH_JSON         write the burst comparison to this path
//
// The committed BENCH_dsudd_baseline.json was produced by running this
// binary with defaults and DSUD_JSON pointed at the repo root;
// BENCH_batch_baseline.json the same way via DSUD_BATCH_JSON.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <sys/socket.h>

#include "bench_util.hpp"
#include "core/cluster.hpp"
#include "gen/synthetic.hpp"
#include "net/wire.hpp"
#include "server/server.hpp"

namespace dsud::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct LoadScale {
  std::size_t n = 8000;
  std::size_t m = 8;
  double q = 0.3;
  std::uint64_t seed = 2010;
  std::vector<double> qpsLevels{4, 16, 64, 256};
  double seconds = 2.0;
  std::size_t conns = 4;
  std::size_t maxInFlight = 8;
  std::size_t maxQueued = 16;
};

LoadScale loadScale() {
  LoadScale s;
  s.n = static_cast<std::size_t>(envOr("DSUD_N", std::int64_t(s.n)));
  s.m = static_cast<std::size_t>(envOr("DSUD_M", std::int64_t(s.m)));
  s.q = envOr("DSUD_Q", s.q);
  s.seed = static_cast<std::uint64_t>(envOr("DSUD_SEED", std::int64_t(s.seed)));
  s.seconds = envOr("DSUD_LOAD_SECONDS", s.seconds);
  s.conns =
      static_cast<std::size_t>(envOr("DSUD_LOAD_CONNS", std::int64_t(s.conns)));
  s.maxInFlight = static_cast<std::size_t>(
      envOr("DSUD_LOAD_MAX_INFLIGHT", std::int64_t(s.maxInFlight)));
  s.maxQueued = static_cast<std::size_t>(
      envOr("DSUD_LOAD_MAX_QUEUED", std::int64_t(s.maxQueued)));
  const std::string levels = envOr("DSUD_LOAD_QPS", std::string{});
  if (!levels.empty()) {
    s.qpsLevels.clear();
    std::size_t pos = 0;
    while (pos < levels.size()) {
      std::size_t end = levels.find(',', pos);
      if (end == std::string::npos) end = levels.size();
      s.qpsLevels.push_back(std::stod(levels.substr(pos, end - pos)));
      pos = end + 1;
    }
  }
  return s;
}

/// What one offered-load level measured.
struct LevelResult {
  double offeredQps = 0;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;  ///< non-shed errors (should stay zero)
  double achievedQps = 0;
  double p50Ms = 0;
  double p95Ms = 0;
  double p99Ms = 0;
};

/// One paced connection: a sender thread writes query lines on an absolute
/// schedule (never waiting for responses); a reader thread drains the
/// response stream, timing each id from its send to its terminal line.
class LoadConnection {
 public:
  LoadConnection(std::uint16_t port, std::string idPrefix, double qps,
                 double seconds, double q)
      : sock_(dsud::connectTo(port, std::chrono::milliseconds{2000})),
        idPrefix_(std::move(idPrefix)),
        qps_(qps),
        seconds_(seconds),
        q_(q) {
    dsud::setSocketTimeouts(sock_, std::chrono::milliseconds{30'000});
  }

  void start() {
    sender_ = std::thread([this] { sendLoop(); });
    reader_ = std::thread([this] { readLoop(); });
  }

  void join() {
    sender_.join();
    reader_.join();
  }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t shed() const { return shed_; }
  std::uint64_t failed() const { return failed_; }
  const std::vector<double>& latenciesMs() const { return latenciesMs_; }

 private:
  void sendLine(const std::string& text) {
    const std::string line = text + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
      const auto n = ::send(sock_.fd(), line.data() + off, line.size() - off,
                            MSG_NOSIGNAL);
      if (n <= 0) throw dsud::NetError("load send failed");
      off += static_cast<std::size_t>(n);
    }
  }

  void sendLoop() {
    const auto t0 = Clock::now();
    const auto interval = std::chrono::duration<double>(1.0 / qps_);
    const auto end = t0 + std::chrono::duration<double>(seconds_);
    std::uint64_t i = 0;
    char q[32];
    std::snprintf(q, sizeof q, "%.3f", q_);
    for (;;) {
      // Open loop: each request has an absolute slot; a slow server makes
      // requests pile up rather than slowing the arrival process down.
      const auto slot =
          t0 + std::chrono::duration_cast<Clock::duration>(interval * i);
      if (slot >= end) break;
      std::this_thread::sleep_until(slot);
      const std::string id = idPrefix_ + std::to_string(i);
      {
        std::lock_guard lock(mutex_);
        sendTimes_[id] = Clock::now();
      }
      sendLine(R"({"op":"query","id":")" + id + R"(","q":)" + q +
               R"(,"progressive":false})");
      ++i;
    }
    sent_ = i;
    senderDone_.store(true, std::memory_order_release);
  }

  void readLoop() {
    std::string buffer;
    char chunk[8192];
    std::uint64_t terminals = 0;
    for (;;) {
      if (senderDone_.load(std::memory_order_acquire) && terminals >= sent_) {
        return;
      }
      const std::size_t nl = buffer.find('\n');
      if (nl == std::string::npos) {
        const auto n = ::recv(sock_.fd(), chunk, sizeof chunk, 0);
        if (n <= 0) throw dsud::NetError("load recv failed");
        buffer.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      const server::Response response = server::decodeResponse(line);
      if (const auto* done = std::get_if<server::DoneResponse>(&response)) {
        recordTerminal(done->id, /*ok=*/true, server::ErrorCode::kInternal);
        ++terminals;
      } else if (const auto* error =
                     std::get_if<server::ErrorResponse>(&response)) {
        recordTerminal(error->id, /*ok=*/false, error->code);
        ++terminals;
      }
      // acks and stray answers carry no timing information here
    }
  }

  void recordTerminal(const std::string& id, bool ok, server::ErrorCode code) {
    Clock::time_point sentAt;
    {
      std::lock_guard lock(mutex_);
      const auto it = sendTimes_.find(id);
      if (it == sendTimes_.end()) return;
      sentAt = it->second;
      sendTimes_.erase(it);
    }
    if (ok) {
      ++completed_;
      latenciesMs_.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - sentAt)
              .count());
    } else if (code == server::ErrorCode::kOverloaded ||
               code == server::ErrorCode::kUnavailable) {
      ++shed_;
    } else {
      ++failed_;
    }
  }

  dsud::Socket sock_;
  const std::string idPrefix_;
  const double qps_;
  const double seconds_;
  const double q_;

  std::mutex mutex_;
  std::map<std::string, Clock::time_point> sendTimes_;
  std::atomic<bool> senderDone_{false};
  std::uint64_t sent_ = 0;

  // Reader-thread-only until join(); read by the harness afterwards.
  std::uint64_t completed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t failed_ = 0;
  std::vector<double> latenciesMs_;

  std::thread sender_;
  std::thread reader_;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

LevelResult runLevel(std::uint16_t port, const LoadScale& scale, double qps) {
  std::vector<std::unique_ptr<LoadConnection>> conns;
  const double perConn = qps / static_cast<double>(scale.conns);
  for (std::size_t c = 0; c < scale.conns; ++c) {
    conns.push_back(std::make_unique<LoadConnection>(
        port, "c" + std::to_string(c) + "-", perConn, scale.seconds, scale.q));
  }
  const auto t0 = Clock::now();
  for (auto& conn : conns) conn->start();
  for (auto& conn : conns) conn->join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

  LevelResult r;
  r.offeredQps = qps;
  std::vector<double> latencies;
  for (const auto& conn : conns) {
    r.sent += conn->sent();
    r.completed += conn->completed();
    r.shed += conn->shed();
    r.failed += conn->failed();
    latencies.insert(latencies.end(), conn->latenciesMs().begin(),
                     conn->latenciesMs().end());
  }
  std::sort(latencies.begin(), latencies.end());
  r.achievedQps = static_cast<double>(r.completed) / elapsed;
  r.p50Ms = percentile(latencies, 0.50);
  r.p95Ms = percentile(latencies, 0.95);
  r.p99Ms = percentile(latencies, 0.99);
  return r;
}

// ---------------------------------------------------------------------------
// Shared-work burst: closed-loop clients, sharing off vs on.

struct BurstSpec {
  std::size_t clients = 64;
  std::size_t perClient = 4;
  double windowMs = 5.0;
};

BurstSpec burstSpec() {
  BurstSpec s;
  s.clients = static_cast<std::size_t>(
      envOr("DSUD_BURST_CLIENTS", std::int64_t(s.clients)));
  s.perClient = static_cast<std::size_t>(
      envOr("DSUD_BURST_PER_CLIENT", std::int64_t(s.perClient)));
  s.windowMs = envOr("DSUD_BATCH_WINDOW_MS", s.windowMs);
  return s;
}

struct BurstResult {
  std::string mix;       ///< "identical" or "banded"
  bool sharing = false;  ///< cache + batching enabled?
  std::uint64_t queries = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double wallMs = 0;
  double qps = 0;
};

/// One burst client: pipelines all its queries on one connection, then
/// reads until every terminal arrived.  Closed loop — the burst's wall
/// time is the cost of answering everything, not an arrival schedule.
void burstClient(std::uint16_t port, const std::string& prefix,
                 std::size_t perClient, double q, std::uint64_t* completed,
                 std::uint64_t* failed) {
  dsud::Socket sock = dsud::connectTo(port, std::chrono::milliseconds{5000});
  dsud::setSocketTimeouts(sock, std::chrono::milliseconds{120'000});
  char qbuf[32];
  std::snprintf(qbuf, sizeof qbuf, "%.3f", q);
  std::string payload;
  for (std::size_t i = 0; i < perClient; ++i) {
    payload += R"({"op":"query","id":")" + prefix + std::to_string(i) +
               R"(","algo":"edsud","q":)" + qbuf +
               R"(,"progressive":false})" "\n";
  }
  std::size_t off = 0;
  while (off < payload.size()) {
    const auto n = ::send(sock.fd(), payload.data() + off,
                          payload.size() - off, MSG_NOSIGNAL);
    if (n <= 0) throw dsud::NetError("burst send failed");
    off += static_cast<std::size_t>(n);
  }
  std::string buffer;
  char chunk[8192];
  std::uint64_t terminals = 0;
  while (terminals < perClient) {
    const std::size_t nl = buffer.find('\n');
    if (nl == std::string::npos) {
      const auto n = ::recv(sock.fd(), chunk, sizeof chunk, 0);
      if (n <= 0) throw dsud::NetError("burst recv failed");
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const server::Response response =
        server::decodeResponse(buffer.substr(0, nl));
    buffer.erase(0, nl + 1);
    if (std::holds_alternative<server::DoneResponse>(response)) {
      ++(*completed);
      ++terminals;
    } else if (std::holds_alternative<server::ErrorResponse>(response)) {
      ++(*failed);
      ++terminals;
    }
  }
}

/// Runs one burst scenario against a fresh daemon (fresh so the "on" run
/// starts with a cold cache — the warm-up it measures is its own).
BurstResult runBurst(InProcCluster& cluster, const LoadScale& scale,
                     const BurstSpec& spec, const std::string& mix,
                     bool sharing) {
  server::ServerConfig config;
  // Generous admission: this section measures execution throughput, not
  // shedding, so nothing may be turned away.
  config.admission.maxInFlight = spec.clients;
  config.admission.maxQueued = spec.clients * spec.perClient;
  if (sharing) {
    config.batching.enabled = true;
    config.batching.windowSeconds = spec.windowMs / 1e3;
  } else {
    config.cacheCapacity = 0;
    config.batching.enabled = false;
  }
  server::QueryServer daemon(cluster.engine(), metricsRegistry(), config);
  daemon.start();
  std::thread loop([&daemon] { daemon.run(); });

  const double bands[4] = {scale.q * 0.67, scale.q, scale.q * 1.33,
                           scale.q * 1.67};
  std::vector<std::uint64_t> completed(spec.clients, 0);
  std::vector<std::uint64_t> failed(spec.clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(spec.clients);
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < spec.clients; ++c) {
    const double q = mix == "banded" ? bands[c % 4] : scale.q;
    threads.emplace_back([&, c, q] {
      burstClient(daemon.port(), "b" + std::to_string(c) + "-",
                  spec.perClient, q, &completed[c], &failed[c]);
    });
  }
  for (auto& t : threads) t.join();
  const double wallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  daemon.stop();
  loop.join();

  BurstResult r;
  r.mix = mix;
  r.sharing = sharing;
  r.queries = spec.clients * spec.perClient;
  for (std::size_t c = 0; c < spec.clients; ++c) {
    r.completed += completed[c];
    r.failed += failed[c];
  }
  r.wallMs = wallMs;
  r.qps = wallMs > 0 ? static_cast<double>(r.completed) / (wallMs / 1e3) : 0;
  return r;
}

void writeBurstJson(const std::string& path, const LoadScale& scale,
                    const BurstSpec& spec,
                    const std::vector<BurstResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "server_load: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n \"note\": \"Shared-work burst baseline: closed-loop "
               "concurrent clients with the result cache and batch executor "
               "off vs on (bench/server_load.cpp).  speedup_x is aggregate "
               "QPS on/off per mix.\",\n");
  std::fprintf(f,
               " \"environment\": {\n  \"DSUD_N\": %zu,\n  \"DSUD_M\": %zu,\n"
               "  \"DSUD_Q\": %.3f,\n  \"DSUD_BURST_CLIENTS\": %zu,\n"
               "  \"DSUD_BURST_PER_CLIENT\": %zu,\n"
               "  \"DSUD_BATCH_WINDOW_MS\": %.1f\n },\n",
               scale.n, scale.m, scale.q, spec.clients, spec.perClient,
               spec.windowMs);
  std::fprintf(f, " \"bursts\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BurstResult& r = results[i];
    std::fprintf(f,
                 "  {\"mix\": \"%s\", \"sharing\": %s, \"queries\": %llu, "
                 "\"completed\": %llu, \"failed\": %llu, \"wall_ms\": %.1f, "
                 "\"qps\": %.1f}%s\n",
                 r.mix.c_str(), r.sharing ? "true" : "false",
                 static_cast<unsigned long long>(r.queries),
                 static_cast<unsigned long long>(r.completed),
                 static_cast<unsigned long long>(r.failed), r.wallMs, r.qps,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, " ],\n \"speedup_x\": {");
  bool first = true;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const BurstResult& off = results[i];
    const BurstResult& on = results[i + 1];
    if (off.mix != on.mix || off.sharing || !on.sharing) continue;
    std::fprintf(f, "%s\"%s\": %.2f", first ? "" : ", ", off.mix.c_str(),
                 off.qps > 0 ? on.qps / off.qps : 0.0);
    first = false;
  }
  std::fprintf(f, "}\n}\n");
  std::fclose(f);
}

void writeJson(const std::string& path, const LoadScale& scale,
               const std::vector<LevelResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "server_load: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n \"note\": \"dsudd open-loop load baseline: offered QPS "
               "vs completion rate, shedding, and end-to-end latency "
               "(bench/server_load.cpp).\",\n");
  std::fprintf(f,
               " \"environment\": {\n  \"DSUD_N\": %zu,\n  \"DSUD_M\": %zu,\n"
               "  \"DSUD_Q\": %.3f,\n  \"DSUD_LOAD_SECONDS\": %.1f,\n"
               "  \"DSUD_LOAD_CONNS\": %zu,\n  \"DSUD_LOAD_MAX_INFLIGHT\": "
               "%zu,\n  \"DSUD_LOAD_MAX_QUEUED\": %zu\n },\n",
               scale.n, scale.m, scale.q, scale.seconds, scale.conns,
               scale.maxInFlight, scale.maxQueued);
  std::fprintf(f, " \"levels\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    std::fprintf(f,
                 "  {\"offered_qps\": %.1f, \"sent\": %llu, \"completed\": "
                 "%llu, \"shed\": %llu, \"failed\": %llu, \"achieved_qps\": "
                 "%.2f, \"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": "
                 "%.2f}%s\n",
                 r.offeredQps, static_cast<unsigned long long>(r.sent),
                 static_cast<unsigned long long>(r.completed),
                 static_cast<unsigned long long>(r.shed),
                 static_cast<unsigned long long>(r.failed), r.achievedQps,
                 r.p50Ms, r.p95Ms, r.p99Ms,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, " ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace dsud::bench

int main() {
  using namespace dsud;
  using namespace dsud::bench;

  const LoadScale scale = loadScale();
  std::printf(
      "dsudd load: N=%zu, m=%zu, q=%.2f, %zu conns, %.1fs per level, "
      "max_in_flight=%zu, max_queued=%zu\n",
      scale.n, scale.m, scale.q, scale.conns, scale.seconds, scale.maxInFlight,
      scale.maxQueued);

  SyntheticSpec spec;
  spec.n = scale.n;
  spec.dims = 3;
  spec.dist = ValueDistribution::kAnticorrelated;
  spec.seed = scale.seed;
  ClusterConfig clusterConfig;
  clusterConfig.metrics = &metricsRegistry();
  InProcCluster cluster(
      Topology::uniform(generateSynthetic(spec, uniformProbability()),
                        scale.m, scale.seed),
      clusterConfig);

  server::ServerConfig config;
  config.admission.maxInFlight = scale.maxInFlight;
  config.admission.maxQueued = scale.maxQueued;
  // The open-loop section measures descent queueing and shedding; with the
  // (default-on) result cache every repeat would be free and the levels
  // meaningless.  The burst section below measures sharing explicitly.
  config.cacheCapacity = 0;
  config.batching.enabled = false;
  server::QueryServer daemon(cluster.engine(), metricsRegistry(), config);
  daemon.start();
  std::thread loop([&daemon] { daemon.run(); });

  printTitle("dsudd open-loop load");
  printHeader({"offered_qps", "sent", "completed", "shed", "achieved_qps",
               "p50_ms", "p95_ms", "p99_ms"});
  std::vector<LevelResult> results;
  for (const double qps : scale.qpsLevels) {
    const LevelResult r = runLevel(daemon.port(), scale, qps);
    results.push_back(r);
    printRow(r.offeredQps, r.sent, r.completed, r.shed, r.achievedQps, r.p50Ms,
             r.p95Ms, r.p99Ms);
    if (r.failed != 0) {
      std::fprintf(stderr, "server_load: %llu unexpected errors at %.1f qps\n",
                   static_cast<unsigned long long>(r.failed), qps);
    }
  }

  const std::string jsonPath = envOr("DSUD_JSON", std::string{});
  if (!jsonPath.empty()) writeJson(jsonPath, scale, results);

  daemon.stop();
  loop.join();

  // Shared-work burst comparison: same cluster, fresh daemon per scenario.
  const BurstSpec burst = burstSpec();
  printTitle("shared-work burst (closed loop)");
  printHeader({"mix", "sharing", "queries", "completed", "failed", "wall_ms",
               "qps"});
  std::vector<BurstResult> bursts;
  for (const std::string mix : {"identical", "banded"}) {
    for (const bool sharing : {false, true}) {
      const BurstResult r = runBurst(cluster, scale, burst, mix, sharing);
      bursts.push_back(r);
      printRow(r.mix.c_str(), r.sharing ? "on" : "off", r.queries, r.completed,
               r.failed, r.wallMs, r.qps);
      if (r.failed != 0) {
        std::fprintf(stderr, "server_load: %llu burst errors (%s, sharing %s)\n",
                     static_cast<unsigned long long>(r.failed), r.mix.c_str(),
                     r.sharing ? "on" : "off");
      }
    }
  }
  for (std::size_t i = 0; i + 1 < bursts.size(); i += 2) {
    std::printf("  %s speedup: %.2fx\n", bursts[i].mix.c_str(),
                bursts[i].qps > 0 ? bursts[i + 1].qps / bursts[i].qps : 0.0);
  }

  const std::string batchJson = envOr("DSUD_BATCH_JSON", std::string{});
  if (!batchJson.empty()) writeBurstJson(batchJson, scale, burst, bursts);
  return 0;
}
