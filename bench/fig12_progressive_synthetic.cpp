// Figure 12 (paper Sec. 7.5): progressiveness on synthetic data.
//   12a/12b: cumulative tuples shipped as a function of the number of
//            skyline answers reported (Independent / Anticorrelated);
//   12c/12d: cumulative CPU time as the same function.
// Ten evenly spaced checkpoints of each curve are printed.
#include "bench_util.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

void printCurves(const QueryResult& dsud, const QueryResult& edsud) {
  printHeader({"reported", "DSUD tuples", "e-DSUD tuples", "DSUD ms",
               "e-DSUD ms"});
  const std::size_t total =
      std::max(dsud.progress.size(), edsud.progress.size());
  if (total == 0) {
    std::printf("(no qualified skyline tuples)\n");
    return;
  }
  const auto at = [](const std::vector<ProgressPoint>& curve,
                     std::size_t k) -> ProgressPoint {
    if (curve.empty()) return {};
    return curve[std::min(k, curve.size() - 1)];
  };
  const std::size_t steps = std::min<std::size_t>(10, total);
  for (std::size_t s = 1; s <= steps; ++s) {
    const std::size_t k = s * total / steps;  // 10%, 20%, ... of answers
    const ProgressPoint d = at(dsud.progress, k - 1);
    const ProgressPoint e = at(edsud.progress, k - 1);
    printRow(std::to_string(k), static_cast<double>(d.tuplesShipped),
             static_cast<double>(e.tuplesShipped), d.seconds * 1e3,
             e.seconds * 1e3);
  }
}

void runPanel(const Scale& scale, ValueDistribution dist) {
  printTitle(std::string("Fig. 12: progressiveness (") +
             distributionName(dist) + ")");
  const Dataset global =
      generateSynthetic(SyntheticSpec{scale.n, 3, dist, scale.seed + 120});
  QueryConfig config;
  config.q = scale.q;

  InProcCluster cluster(Topology::uniform(global, scale.m, scale.seed + 121));
  const QueryResult dsud = cluster.engine().runDsud(config);
  const QueryResult edsud = cluster.engine().runEdsud(config);
  printCurves(dsud, edsud);
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  runPanel(scale, ValueDistribution::kIndependent);
  runPanel(scale, ValueDistribution::kAnticorrelated);
  return 0;
}
