// Figure 11 (paper Sec. 7.4): the NYSE stock-trace experiments.
//   11a: bandwidth vs number of sites m (uniform probabilities, q = 0.3)
//   11b: bandwidth vs threshold q        (uniform probabilities, m = 60)
//   11c: bandwidth vs Gaussian mean μ    (σ = 0.2, q = 0.3, m = 60)
//   11d: |SKY| vs Gaussian mean μ        (both algorithms report the same
//        count — only the bandwidth differs)
// The trace itself is the documented synthetic substitution for the
// proprietary Dell/NYSE data (DESIGN.md Sec. 5).
#include "bench_util.hpp"

#include "gen/probability.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

void panelA(const Scale& scale, const Dataset& trace) {
  printTitle("Fig. 11a: NYSE bandwidth vs site count (uniform probs)");
  printHeader({"m", "DSUD", "e-DSUD", "|SKY|"});
  QueryConfig config;
  config.q = scale.q;
  for (std::size_t m : {40u, 60u, 80u, 100u}) {
    const Point dsud =
        averagePoint(trace, m, scale.repeats, Algo::kDsud, config, scale.seed);
    const Point edsud =
        averagePoint(trace, m, scale.repeats, Algo::kEdsud, config, scale.seed);
    printRow(std::to_string(m), dsud.tuples, edsud.tuples, edsud.skyline);
  }
}

void panelB(const Scale& scale, const Dataset& trace) {
  printTitle("Fig. 11b: NYSE bandwidth vs threshold q (uniform probs)");
  printHeader({"q", "DSUD", "e-DSUD", "|SKY|"});
  for (const double q : {0.3, 0.5, 0.7, 0.9}) {
    QueryConfig config;
    config.q = q;
    const Point dsud = averagePoint(trace, scale.m, scale.repeats, Algo::kDsud,
                                    config, scale.seed);
    const Point edsud = averagePoint(trace, scale.m, scale.repeats,
                                     Algo::kEdsud, config, scale.seed);
    char label[8];
    std::snprintf(label, sizeof(label), "%.1f", q);
    printRow(std::string(label), dsud.tuples, edsud.tuples, edsud.skyline);
  }
}

void panelsCD(const Scale& scale) {
  printTitle("Fig. 11c/11d: NYSE vs Gaussian probability mean (sigma = 0.2)");
  printHeader({"mu", "DSUD", "e-DSUD", "|SKY| DSUD", "|SKY| e-DSUD"});
  QueryConfig config;
  config.q = scale.q;
  for (const double mu : {0.3, 0.5, 0.7, 0.9}) {
    const Dataset trace = generateNyse(NyseSpec{scale.n, scale.seed + 110},
                                       gaussianProbability(mu, 0.2));
    const Point dsud = averagePoint(trace, scale.m, scale.repeats, Algo::kDsud,
                                    config, scale.seed);
    const Point edsud = averagePoint(trace, scale.m, scale.repeats,
                                     Algo::kEdsud, config, scale.seed);
    char label[8];
    std::snprintf(label, sizeof(label), "%.1f", mu);
    printRow(std::string(label), dsud.tuples, edsud.tuples, dsud.skyline,
             edsud.skyline);
  }
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  const Dataset trace = generateNyse(NyseSpec{scale.n, scale.seed + 110});
  panelA(scale, trace);
  panelB(scale, trace);
  panelsCD(scale);
  return 0;
}
