// Microbenchmarks M3: streaming and cube machinery — sliding-window
// maintenance throughput, candidate-test cost, skycube construction, and
// the Monte Carlo estimator's world rate.
#include <benchmark/benchmark.h>

#include "gen/nyse.hpp"
#include "gen/synthetic.hpp"
#include "skyline/monte_carlo.hpp"
#include "skyline/skycube.hpp"
#include "skyline/stream.hpp"

namespace {

using namespace dsud;

void BM_SlidingWindowAppend(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const Dataset trace = generateNyse(NyseSpec{window + (1u << 14), 9100});
  SlidingWindowSkyline stream(2, window, 0.3);
  std::size_t row = 0;
  for (auto _ : state) {
    stream.append(trace.tuple(row));
    row = (row + 1) % trace.size();
    if (row == 0) {
      // Ids repeat once the trace wraps; rebuild to keep them unique.
      state.PauseTiming();
      stream = SlidingWindowSkyline(2, window, 0.3);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingWindowAppend)->Arg(1024)->Arg(16384);

void BM_SlidingWindowQuery(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const Dataset trace = generateNyse(NyseSpec{window, 9101});
  SlidingWindowSkyline stream(2, window, 0.3);
  for (std::size_t row = 0; row < trace.size(); ++row) {
    stream.append(trace.tuple(row));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.skyline().size());
  }
}
BENCHMARK(BM_SlidingWindowQuery)->Arg(1024)->Arg(16384);

void BM_CandidateCount(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const Dataset trace = generateNyse(NyseSpec{window, 9102});
  SlidingWindowSkyline stream(2, window, 0.3);
  for (std::size_t row = 0; row < trace.size(); ++row) {
    stream.append(trace.tuple(row));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.candidateCount());
  }
}
BENCHMARK(BM_CandidateCount)->Arg(1024)->Arg(4096);

void BM_SkycubeConstruction(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const Dataset data = generateSynthetic(
      SyntheticSpec{20000, d, ValueDistribution::kIndependent, 9103});
  const PRTree tree = PRTree::bulkLoad(data);
  for (auto _ : state) {
    const Skycube cube(tree, 0.3);
    benchmark::DoNotOptimize(cube.cuboidCount());
  }
}
BENCHMARK(BM_SkycubeConstruction)->Arg(2)->Arg(3)->Arg(4);

void BM_MonteCarloWorlds(benchmark::State& state) {
  const Dataset data = generateSynthetic(
      SyntheticSpec{static_cast<std::size_t>(state.range(0)), 3,
                    ValueDistribution::kIndependent, 9104});
  Rng rng(9105);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skylineProbabilitiesMonteCarlo(data, 100, rng).size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_MonteCarloWorlds)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
