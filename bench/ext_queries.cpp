// Extension benchmarks (beyond the paper's figures):
//   * constrained queries — bandwidth vs window selectivity;
//   * top-k — bandwidth vs k, against the exhaustive floor query;
//   * the vertical-partitioning baseline's access counts vs dimensionality.
#include "bench_util.hpp"

#include "gen/partition.hpp"
#include "vertical/vertical.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

void constrainedPanel(const Scale& scale) {
  printTitle("Constrained queries: bandwidth vs window selectivity "
             "(anticorrelated, d = 2)");
  printHeader({"window", "e-DSUD", "|SKY|"});

  const Dataset global = generateSynthetic(SyntheticSpec{
      scale.n, 2, ValueDistribution::kAnticorrelated, scale.seed + 170});
  const struct {
    double lo;
    double hi;
    const char* name;
  } windows[] = {
      {0.0, 1.0, "full"},
      {0.0, 0.5, "half"},
      {0.25, 0.5, "quarter"},
      {0.45, 0.55, "tight"},
  };
  for (const auto& w : windows) {
    QueryConfig config;
    config.q = scale.q;
    Rect window(2);
    const std::array<double, 2> lo = {w.lo, w.lo};
    const std::array<double, 2> hi = {w.hi, w.hi};
    window.expand(lo);
    window.expand(hi);
    config.window = window;

    InProcCluster cluster(Topology::uniform(global, scale.m, scale.seed));
    const QueryResult result = cluster.engine().runEdsud(config);
    printRow(std::string(w.name),
             static_cast<double>(result.stats.tuplesShipped),
             static_cast<double>(result.skyline.size()));
  }
}

void topkPanel(const Scale& scale) {
  printTitle("Top-k: bandwidth vs k (anticorrelated, d = 3, floor 0.05)");
  printHeader({"k", "adaptive", "exhaustive", "saving %"});

  const Dataset global = generateSynthetic(SyntheticSpec{
      scale.n, 3, ValueDistribution::kAnticorrelated, scale.seed + 171});
  InProcCluster cluster(Topology::uniform(global, scale.m, scale.seed));

  QueryConfig floorConfig;
  floorConfig.q = 0.05;
  const QueryResult exhaustive = cluster.engine().runEdsud(floorConfig);

  for (const std::size_t k : {1u, 5u, 10u, 50u, 200u}) {
    TopKConfig config;
    config.k = k;
    config.floorQ = 0.05;
    const QueryResult result = cluster.engine().runTopK(config);
    const double saving =
        100.0 * (1.0 - static_cast<double>(result.stats.tuplesShipped) /
                           static_cast<double>(exhaustive.stats.tuplesShipped));
    printRow(std::to_string(k),
             static_cast<double>(result.stats.tuplesShipped),
             static_cast<double>(exhaustive.stats.tuplesShipped), saving);
  }
}

void verticalPanel(const Scale& scale) {
  printTitle("Vertical-partitioning baseline (certain data): accesses vs d");
  printHeader({"d", "dist", "sorted", "random", "candidates", "|SKY|"});

  for (std::size_t d = 2; d <= 4; ++d) {
    for (const ValueDistribution dist : {ValueDistribution::kIndependent,
                                         ValueDistribution::kAnticorrelated}) {
      const Dataset data = generateSynthetic(
          SyntheticSpec{scale.n / 10, d, dist, scale.seed + 172});
      VerticalStats stats;
      const auto sky = verticalSkyline(data, &stats);
      printRow(std::to_string(d), std::string(distributionName(dist)),
               static_cast<double>(stats.sortedAccesses),
               static_cast<double>(stats.randomAccesses),
               static_cast<double>(stats.candidates),
               static_cast<double>(sky.size()));
    }
  }
}

void skewPanel(const Scale& scale) {
  printTitle("Partitioning skew: bandwidth under placement strategies "
             "(independent, d = 3, m = 20)");
  printHeader({"strategy", "DSUD", "e-DSUD", "|SKY|"});

  const Dataset global = generateSynthetic(SyntheticSpec{
      scale.n, 3, ValueDistribution::kIndependent, scale.seed + 173});
  const std::size_t m = 20;

  const auto measure = [&](const std::vector<Dataset>& sites,
                           const std::string& name) {
    InProcCluster dsudCluster(Topology::fromPartitions(sites));
    InProcCluster edsudCluster(Topology::fromPartitions(sites));
    QueryConfig config;
    config.q = scale.q;
    const QueryResult dsud = dsudCluster.engine().runDsud(config);
    const QueryResult edsud = edsudCluster.engine().runEdsud(config);
    printRow(name, static_cast<double>(dsud.stats.tuplesShipped),
             static_cast<double>(edsud.stats.tuplesShipped),
             static_cast<double>(edsud.skyline.size()));
  };

  Rng rng(scale.seed);
  measure(partitionUniform(global, m, rng), "uniform");
  measure(partitionByRange(global, m, 0), "range(d0)");
  Rng zipfRng(scale.seed + 1);
  measure(partitionZipf(global, m, 1.0, zipfRng), "zipf(1.0)");
  Rng zipf2Rng(scale.seed + 2);
  measure(partitionZipf(global, m, 2.0, zipf2Rng), "zipf(2.0)");
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  constrainedPanel(scale);
  topkPanel(scale);
  verticalPanel(scale);
  skewPanel(scale);
  return 0;
}
