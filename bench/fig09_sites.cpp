// Figure 9 (paper Sec. 7.2): bandwidth vs the number of local sites
// m = 40..100 (d = 3, q = 0.3), Independent and Anticorrelated.
#include "bench_util.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

void runPanel(const Scale& scale, ValueDistribution dist, char panel) {
  printTitle(std::string("Fig. 9") + panel + ": bandwidth vs site count (" +
             distributionName(dist) + ")");
  printHeader({"m", "DSUD", "e-DSUD", "|SKY|"});

  QueryConfig config;
  config.q = scale.q;
  const Dataset global =
      generateSynthetic(SyntheticSpec{scale.n, 3, dist, scale.seed + 90});
  for (std::size_t m : {40u, 60u, 80u, 100u}) {
    const Point dsud = averagePoint(global, m, scale.repeats, Algo::kDsud,
                                    config, scale.seed);
    const Point edsud = averagePoint(global, m, scale.repeats, Algo::kEdsud,
                                     config, scale.seed);
    printRow(std::to_string(m), dsud.tuples, edsud.tuples, edsud.skyline);
  }
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  runPanel(scale, ValueDistribution::kIndependent, 'a');
  runPanel(scale, ValueDistribution::kAnticorrelated, 'b');
  return 0;
}
