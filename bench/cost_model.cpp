// Eqs. 6–8 (paper Sec. 4): the analytical feedback cost model that motivates
// e-DSUD's selective feedback.  Prints H(d, N), N_back = (m−1)·H(d, N) and
// N_local = (m−1)·H(d, N/m) for the Table 3 parameter grid, showing
// N_back > N_local — naive feedback costs more than shipping every local
// skyline.
#include <cstdio>

#include "bench_util.hpp"
#include "skyline/cardinality.hpp"

int main() {
  using namespace dsud;
  using namespace dsud::bench;

  const Scale scale = defaultScale();
  const std::size_t n =
      envOr("DSUD_SCALE", std::string{}) == "paper" ? 2'000'000 : scale.n;

  printTitle("Eq. 6: expected skyline cardinality H(d, N)");
  printHeader({"N", "d=2", "d=3", "d=4", "d=5"});
  for (const std::size_t nn :
       {n / 100, n / 10, n, n * 10}) {
    printRow(std::to_string(nn), expectedSkylineCardinality(2, nn),
             expectedSkylineCardinality(3, nn),
             expectedSkylineCardinality(4, nn),
             expectedSkylineCardinality(5, nn));
  }

  printTitle("Eqs. 7-8: N_back vs N_local (d = 3, N = " + std::to_string(n) +
             ")");
  printHeader({"m", "N_back", "N_local", "ratio"});
  for (const std::size_t m : {40u, 60u, 80u, 100u}) {
    const double nBack = expectedFeedbackTuples(3, n, m);
    const double nLocal = expectedLocalSkylineTuples(3, n, m);
    printRow(std::to_string(m), nBack, nLocal, nBack / nLocal);
  }
  std::printf(
      "\nN_back > N_local for every m: feedback must be *selective* "
      "(the e-DSUD design point).\n");
  return 0;
}
