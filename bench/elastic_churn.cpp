// Elasticity bench: query latency under background membership churn.
//
// Steady state first: a fixed cluster answers a batch of e-DSUD queries and
// we record per-query wall time.  Then an admin thread loops
// join -> rebalance -> leave (which rebalances again) while the same query
// loop runs in the foreground.  Sessions pin the cluster view they started
// on, so every query must stay exact -- the bench verifies non-degraded
// completion and an unchanged answer id set on every iteration -- and the
// table shows what the churn costs in p50/p95 latency.
//
// The second table repeats the churn phase with k = 2 replicas, showing the
// latency price of keeping a hot copy of every partition.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

std::vector<TupleId> answerIds(const QueryResult& result) {
  std::vector<TupleId> ids;
  ids.reserve(result.skyline.size());
  for (const GlobalSkylineEntry& e : result.skyline) ids.push_back(e.tuple.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

struct Phase {
  std::size_t queries = 0;
  double meanMs = 0.0;
  double p50Ms = 0.0;
  double p95Ms = 0.0;
  std::uint64_t rebalances = 0;
  std::uint64_t epoch = 0;
};

Phase runPhase(InProcCluster& cluster, const Scale& scale,
               const std::vector<TupleId>& expected, std::size_t queries,
               bool churn) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rebalances{0};
  std::thread admin;
  if (churn) {
    admin = std::thread([&cluster, &stop, &rebalances] {
      while (!stop.load(std::memory_order_acquire)) {
        const SiteId added = cluster.addSite();
        cluster.rebalance();
        cluster.removeSite(added);
        rebalances.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  QueryConfig query;
  query.q = scale.q;
  std::vector<double> ms;
  ms.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    const QueryResult result = cluster.engine().runEdsud(query);
    if (result.degraded || answerIds(result) != expected) {
      std::fprintf(stderr,
                   "FATAL: query under churn degraded or changed answer\n");
      std::exit(1);
    }
    ms.push_back(result.stats.seconds * 1000.0);
  }

  if (churn) {
    stop.store(true, std::memory_order_release);
    admin.join();
  }

  Phase phase;
  phase.queries = queries;
  for (const double v : ms) phase.meanMs += v;
  phase.meanMs /= static_cast<double>(ms.size());
  std::sort(ms.begin(), ms.end());
  phase.p50Ms = percentile(ms, 0.50);
  phase.p95Ms = percentile(ms, 0.95);
  phase.rebalances = rebalances.load(std::memory_order_relaxed);
  phase.epoch = cluster.membershipEpoch();
  return phase;
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);

  const Dataset global = generateSynthetic(
      SyntheticSpec{scale.n, 3, ValueDistribution::kIndependent, scale.seed});
  const std::size_t queries = std::max<std::size_t>(scale.repeats * 8, 16);

  printTitle("Query latency: steady state vs background repartitioning");
  printHeader({"k", "phase", "queries", "mean ms", "p50 ms", "p95 ms",
               "rebalances", "epoch"});
  for (const std::size_t replicas : {std::size_t{1}, std::size_t{2}}) {
    ClusterConfig config;
    config.metrics = &metricsRegistry();
    InProcCluster cluster(
        Topology::uniform(global, scale.m, scale.seed, replicas), config);
    QueryConfig query;
    query.q = scale.q;
    const std::vector<TupleId> expected =
        answerIds(cluster.engine().runEdsud(query));

    const Phase steady = runPhase(cluster, scale, expected, queries, false);
    printRow(std::uint64_t(replicas), std::string("steady"),
             std::uint64_t(steady.queries), steady.meanMs, steady.p50Ms,
             steady.p95Ms, steady.rebalances, steady.epoch);
    const Phase churn = runPhase(cluster, scale, expected, queries, true);
    printRow(std::uint64_t(replicas), std::string("churn"),
             std::uint64_t(churn.queries), churn.meanMs, churn.p50Ms,
             churn.p95Ms, churn.rebalances, churn.epoch);
  }
  return 0;
}
