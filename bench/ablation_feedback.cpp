// Ablation A2 (DESIGN.md 3.4): which witnesses power e-DSUD's upper bound?
//   none        — no bound at all (degenerates to DSUD-style broadcast-all)
//   queued      — Observation 2 over currently queued tuples (the paper)
//   +confirmed  — plus the transitive Corollary-2 bound through confirmed
//                 answers (this implementation's tightening)
// All three settings return the exact answer; they differ in how many
// candidates are expunged before their (m−1)-tuple broadcast.
#include "bench_util.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

void runPanel(const Scale& scale, ValueDistribution dist) {
  printTitle(std::string("Ablation A2: e-DSUD bound witnesses x expunge "
                         "policy (") +
             distributionName(dist) + ", d = 3)");
  printHeader({"bound", "policy", "tuples", "broadcasts", "expunged"});

  const Dataset global =
      generateSynthetic(SyntheticSpec{scale.n, 3, dist, scale.seed + 160});
  const struct {
    FeedbackBound bound;
    const char* name;
  } bounds[] = {
      {FeedbackBound::kNone, "none"},
      {FeedbackBound::kQueuedWitnesses, "witnesses"},
      {FeedbackBound::kQueuedAndConfirmed, "+confirmed"},
  };
  const struct {
    ExpungePolicy policy;
    const char* name;
  } policies[] = {
      {ExpungePolicy::kEager, "eager"},
      {ExpungePolicy::kPark, "park"},
  };
  for (const auto& bound : bounds) {
    for (const auto& policy : policies) {
      QueryConfig config;
      config.q = scale.q;
      config.bound = bound.bound;
      config.expunge = policy.policy;
      double tuples = 0.0;
      double broadcasts = 0.0;
      double expunged = 0.0;
      for (std::size_t r = 0; r < scale.repeats; ++r) {
        InProcCluster cluster(Topology::uniform(global, scale.m, scale.seed + r * 7919));
        const QueryResult result = cluster.engine().runEdsud(config);
        tuples += static_cast<double>(result.stats.tuplesShipped);
        broadcasts += static_cast<double>(result.stats.broadcasts);
        expunged += static_cast<double>(result.stats.expunged);
      }
      const auto d = static_cast<double>(scale.repeats);
      printRow(std::string(bound.name), std::string(policy.name), tuples / d,
               broadcasts / d, expunged / d);
    }
  }
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  runPanel(scale, ValueDistribution::kIndependent);
  runPanel(scale, ValueDistribution::kAnticorrelated);
  return 0;
}
