// Fault-tolerance bench: completion and latency as functions of the
// injected transport fault rate.
//
// Sweeps a symmetric drop/error rate over every channel (ChaosChannel with
// a per-rate seed), runs DSUD and e-DSUD under a fixed retry budget in
// degraded mode, and reports how many queries stayed exact, how many
// completed degraded (a site exhausted its budget and was excluded), how
// many failed outright (every site lost), and the mean wall time.  Retries
// come from the shared metrics registry, so the table shows how much work
// the fault rate actually induced.  Backoff is zeroed: the point is the
// protocol's fault-handling overhead, not sleep time.
//
// A second table kills one site for good mid-query (killAfter = 1) and
// shows both algorithms completing degraded over the survivors.
#include <chrono>
#include <exception>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/chaos.hpp"
#include "net/fault.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

std::uint64_t retriesTotal() {
  std::uint64_t sum = 0;
  for (const auto& [name, value] : metricsRegistry().snapshot().counters) {
    if (name.rfind("dsud_retries_total", 0) == 0) sum += value;
  }
  return sum;
}

struct FaultPoint {
  std::size_t exact = 0;     ///< completed with no site excluded
  std::size_t degraded = 0;  ///< completed over survivors
  std::size_t failed = 0;    ///< aborted (every site unreachable)
  double seconds = 0.0;      ///< mean wall time of completed queries
};

FaultPoint sweepAlgo(const Dataset& global, const Scale& scale, Algo algo,
                     double faultRate, const QueryOptions& options) {
  FaultPoint point;
  std::size_t completed = 0;
  for (std::size_t r = 0; r < scale.repeats; ++r) {
    ClusterConfig config;
    config.metrics = &metricsRegistry();
    if (faultRate > 0.0) {
      config.chaos = ChaosSpec{.dropRate = faultRate / 2,
                               .errorRate = faultRate / 2,
                               .seed = scale.seed + r * 31};
    }
    InProcCluster cluster(Topology::uniform(global, scale.m, scale.seed + r * 7919), config);
    try {
      const QueryResult result =
          cluster.engine().run(algo, QueryConfig{.q = scale.q}, options);
      ++(result.degraded ? point.degraded : point.exact);
      point.seconds += result.stats.seconds;
      ++completed;
    } catch (const std::exception&) {
      ++point.failed;
    }
  }
  if (completed > 0) point.seconds /= static_cast<double>(completed);
  return point;
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  std::printf("retry budget: 6 attempts, zero backoff; mode: degrade\n");

  const Dataset global = generateSynthetic(
      SyntheticSpec{scale.n, 3, ValueDistribution::kIndependent, scale.seed});

  QueryOptions options;
  options.fault.retry.maxAttempts = 6;
  options.fault.retry.initialBackoff = std::chrono::milliseconds{0};
  options.fault.onSiteFailure = OnSiteFailure::kDegrade;

  printTitle("Completion and latency vs transport fault rate");
  printHeader({"fault%", "DSUD exact", "DSUD degr", "DSUD fail", "DSUD s",
               "eDSUD exact", "eDSUD degr", "eDSUD fail", "eDSUD s",
               "retries"});
  for (const double rate : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    const std::uint64_t retriesBefore = retriesTotal();
    const FaultPoint dsud = sweepAlgo(global, scale, Algo::kDsud, rate,
                                      options);
    const FaultPoint edsud = sweepAlgo(global, scale, Algo::kEdsud, rate,
                                       options);
    printRow(rate * 100.0, std::uint64_t(dsud.exact),
             std::uint64_t(dsud.degraded), std::uint64_t(dsud.failed),
             dsud.seconds, std::uint64_t(edsud.exact),
             std::uint64_t(edsud.degraded), std::uint64_t(edsud.failed),
             edsud.seconds, retriesTotal() - retriesBefore);
  }

  printTitle("Degraded completion: one site killed mid-query");
  printHeader({"algo", "exact", "degraded", "failed", "mean s"});
  for (const Algo algo : {Algo::kDsud, Algo::kEdsud}) {
    FaultPoint point;
    std::size_t completed = 0;
    for (std::size_t r = 0; r < scale.repeats; ++r) {
      ClusterConfig config;
      config.metrics = &metricsRegistry();
      config.chaos = ChaosSpec{
          .killAfter = 1,
          .onlySite = static_cast<SiteId>(r % scale.m),
          .seed = scale.seed + r * 31};
      InProcCluster cluster(Topology::uniform(global, scale.m, scale.seed + r * 7919), config);
      try {
        const QueryResult result =
            cluster.engine().run(algo, QueryConfig{.q = scale.q}, options);
        ++(result.degraded ? point.degraded : point.exact);
        point.seconds += result.stats.seconds;
        ++completed;
      } catch (const std::exception&) {
        ++point.failed;
      }
    }
    if (completed > 0) point.seconds /= static_cast<double>(completed);
    printRow(std::string(algoLabel(algo)), std::uint64_t(point.exact),
             std::uint64_t(point.degraded), std::uint64_t(point.failed),
             point.seconds);
  }
  return 0;
}
