// Microbenchmarks M2: centralised probabilistic skyline — indexed BBS over
// the PR-tree vs the O(N²) linear scan, across distributions and thresholds.
#include <benchmark/benchmark.h>

#include "gen/synthetic.hpp"
#include "skyline/bbs.hpp"
#include "skyline/linear_skyline.hpp"

namespace {

using namespace dsud;

Dataset makeData(std::size_t n, ValueDistribution dist) {
  return generateSynthetic(SyntheticSpec{n, 3, dist, 9002});
}

void BM_LinearSkyline(benchmark::State& state) {
  const Dataset data = makeData(static_cast<std::size_t>(state.range(0)),
                                ValueDistribution::kIndependent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linearSkyline(data, {.q = 0.3}).size());
  }
}
BENCHMARK(BM_LinearSkyline)->Arg(1000)->Arg(4000)->Arg(8000);

void BM_BbsSkylineIndependent(benchmark::State& state) {
  const Dataset data = makeData(static_cast<std::size_t>(state.range(0)),
                                ValueDistribution::kIndependent);
  const PRTree tree = PRTree::bulkLoad(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bbsSkyline(tree, {.q = 0.3}).size());
  }
}
BENCHMARK(BM_BbsSkylineIndependent)
    ->Arg(1000)
    ->Arg(16000)
    ->Arg(100000)
    ->Arg(1000000);

void BM_BbsSkylineAnticorrelated(benchmark::State& state) {
  const Dataset data = makeData(static_cast<std::size_t>(state.range(0)),
                                ValueDistribution::kAnticorrelated);
  const PRTree tree = PRTree::bulkLoad(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bbsSkyline(tree, {.q = 0.3}).size());
  }
}
BENCHMARK(BM_BbsSkylineAnticorrelated)->Arg(16000)->Arg(100000);

void BM_BbsThresholdSweep(benchmark::State& state) {
  const Dataset data = makeData(100000, ValueDistribution::kIndependent);
  const PRTree tree = PRTree::bulkLoad(data);
  const double q = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bbsSkyline(tree, {.q = q}).size());
  }
}
BENCHMARK(BM_BbsThresholdSweep)->Arg(3)->Arg(5)->Arg(7)->Arg(9);

}  // namespace

BENCHMARK_MAIN();
