// Ablation A1 (DESIGN.md 3.5): the exact threshold-bound local-pruning rule
// vs the paper's unconditional dominance rule.  Dominance pruning ships
// fewer tuples but can silently drop qualified answers (recall < 1); the
// table quantifies both effects.
#include "bench_util.hpp"

#include <algorithm>

#include "skyline/bbs.hpp"

namespace {

using namespace dsud;
using namespace dsud::bench;

struct Outcome {
  double tuples = 0.0;
  double reported = 0.0;
  double recall = 0.0;  // fraction of true answers reported
};

Outcome measure(const Dataset& global, const Scale& scale, PruneRule rule,
                std::size_t truth) {
  QueryConfig config;
  config.q = scale.q;
  config.prune = rule;

  Outcome o;
  for (std::size_t r = 0; r < scale.repeats; ++r) {
    InProcCluster cluster(Topology::uniform(global, scale.m, scale.seed + r * 7919));
    const QueryResult result = cluster.engine().runEdsud(config);
    o.tuples += static_cast<double>(result.stats.tuplesShipped);
    o.reported += static_cast<double>(result.skyline.size());
    o.recall += truth == 0
                    ? 1.0
                    : static_cast<double>(result.skyline.size()) /
                          static_cast<double>(truth);
  }
  const auto d = static_cast<double>(scale.repeats);
  o.tuples /= d;
  o.reported /= d;
  o.recall /= d;
  return o;
}

}  // namespace

int main() {
  const Scale scale = defaultScale();
  printScale(scale);
  printTitle("Ablation A1: local-pruning rule (e-DSUD, d = 3)");
  printHeader({"dist", "rule", "tuples", "reported", "recall %"});

  for (const ValueDistribution dist : {ValueDistribution::kIndependent,
                                       ValueDistribution::kAnticorrelated}) {
    const Dataset global =
        generateSynthetic(SyntheticSpec{scale.n, 3, dist, scale.seed + 150});
    // Indexed ground truth (the O(N²) scan would dominate the bench).
    const std::size_t truth =
        bbsSkyline(PRTree::bulkLoad(global), {.q = scale.q}).size();
    const Outcome exact =
        measure(global, scale, PruneRule::kThresholdBound, truth);
    const Outcome paper = measure(global, scale, PruneRule::kDominance, truth);
    printRow(std::string(distributionName(dist)), std::string("threshold"),
             exact.tuples, exact.reported, exact.recall * 100.0);
    printRow(std::string(distributionName(dist)), std::string("dominance"),
             paper.tuples, paper.reported, paper.recall * 100.0);
  }
  std::printf(
      "\nthreshold = exact answer guaranteed; dominance = paper Sec. 4 rule "
      "(cheaper, recall may drop below 100%%).\n");
  return 0;
}
