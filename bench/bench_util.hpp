// Shared harness for the figure-reproduction benchmarks.
//
// Every bench binary runs standalone with no arguments (`for b in
// build/bench/*; do $b; done`).  Scale comes from the environment:
//
//   DSUD_N        global cardinality            (default 100000)
//   DSUD_M        number of local sites         (default 60, Table 3)
//   DSUD_Q        probability threshold         (default 0.3, Table 3)
//   DSUD_REPEATS  queries averaged per point    (default 2; paper uses 10)
//   DSUD_SEED     base RNG seed                 (default 2010)
//   DSUD_SCALE    "paper" restores N=2,000,000 and 10 repeats (slow!)
//   DSUD_CSV      directory to mirror every table into as <title>.csv
//
// Results print as fixed-width tables with one row per x-axis point and one
// column per algorithm, mirroring the series of the paper's figures.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/stopwatch.hpp"
#include "core/cluster.hpp"
#include "gen/nyse.hpp"
#include "gen/synthetic.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "skyline/bbs.hpp"

namespace dsud::bench {

struct Scale {
  std::size_t n = 100000;
  std::size_t m = 60;
  double q = 0.3;
  std::size_t repeats = 2;
  std::uint64_t seed = 2010;
};

inline Scale defaultScale() {
  Scale s;
  if (envOr("DSUD_SCALE", std::string{}) == "paper") {
    s.n = 2'000'000;
    s.repeats = 10;
  }
  s.n = static_cast<std::size_t>(envOr("DSUD_N", std::int64_t(s.n)));
  s.m = static_cast<std::size_t>(envOr("DSUD_M", std::int64_t(s.m)));
  s.q = envOr("DSUD_Q", s.q);
  s.repeats =
      static_cast<std::size_t>(envOr("DSUD_REPEATS", std::int64_t(s.repeats)));
  s.seed = static_cast<std::uint64_t>(envOr("DSUD_SEED", std::int64_t(s.seed)));
  return s;
}

// The bench harness dispatches on the library's own algorithm selector.
using Algo = dsud::Algo;

inline const char* algoLabel(Algo a) {
  switch (a) {
    case Algo::kNaive:
      return "Naive";
    case Algo::kDsud:
      return "DSUD";
    case Algo::kEdsud:
      return "e-DSUD";
  }
  return "?";
}

inline QueryResult runAlgo(QueryEngine& engine, Algo algo,
                           const QueryConfig& config,
                           const QueryOptions& options = {}) {
  return engine.run(algo, config, options);
}

/// One averaged measurement point.
struct Point {
  double tuples = 0.0;   ///< mean tuples shipped (the paper's bandwidth)
  double seconds = 0.0;  ///< mean wall time
  double skyline = 0.0;  ///< mean answers reported
};

/// Registry shared by every cluster a bench binary builds, so protocol and
/// transport metrics accumulate across repeats.  Snapshots land in a
/// `<table>.metrics.json` next to each table's CSV (see printTitle).
inline obs::MetricsRegistry& metricsRegistry() {
  static obs::MetricsRegistry registry;
  return registry;
}

/// Runs `algo` `repeats` times over fresh partitionings of `global` and
/// averages the outcome.
inline Point averagePoint(const Dataset& global, std::size_t m,
                          std::size_t repeats, Algo algo,
                          const QueryConfig& config, std::uint64_t seed) {
  Point p;
  for (std::size_t r = 0; r < repeats; ++r) {
    ClusterConfig clusterConfig;
    clusterConfig.metrics = &metricsRegistry();
    InProcCluster cluster(Topology::uniform(global, m, seed + r * 7919),
                          clusterConfig);
    const QueryResult result = runAlgo(cluster.engine(), algo, config);
    p.tuples += static_cast<double>(result.stats.tuplesShipped);
    p.seconds += result.stats.seconds;
    p.skyline += static_cast<double>(result.skyline.size());
  }
  const auto d = static_cast<double>(repeats);
  p.tuples /= d;
  p.seconds /= d;
  p.skyline /= d;
  return p;
}

// ---------------------------------------------------------------------------
// Table printing
//
// Every table also lands as a CSV file when DSUD_CSV=<directory> is set, so
// figure data can be plotted without scraping stdout.  The CSV file name is
// the slugified table title.

namespace detail {

struct CsvSink {
  std::FILE* file = nullptr;
  /// Where the current table's metrics snapshot lands when closed.
  std::string metricsPath;

  ~CsvSink() { close(); }
  void close() {
    if (file != nullptr) {
      std::fclose(file);
      file = nullptr;
    }
    if (!metricsPath.empty()) {
      const std::string json =
          obs::metricsToJson(metricsRegistry().snapshot());
      if (std::FILE* mf = std::fopen(metricsPath.c_str(), "w");
          mf != nullptr) {
        std::fwrite(json.data(), 1, json.size(), mf);
        std::fclose(mf);
      } else {
        std::fprintf(stderr, "bench: cannot open %s for metrics output\n",
                     metricsPath.c_str());
      }
      metricsPath.clear();
      // Each table gets a fresh window of counters.
      metricsRegistry().reset();
    }
  }
};

inline CsvSink& csvSink() {
  // The sink's destructor snapshots the registry, so the registry must be
  // constructed first (and thus destroyed last) — touch it before the
  // sink's own static initialisation.
  metricsRegistry();
  static CsvSink sink;
  return sink;
}

inline std::string slugify(const std::string& title) {
  std::string slug;
  for (const char c : title) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      slug += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

}  // namespace detail

inline void printTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  detail::csvSink().close();
  const std::string dir = envOr("DSUD_CSV", std::string{});
  if (!dir.empty()) {
    const std::string slug = detail::slugify(title);
    const std::string path = dir + "/" + slug + ".csv";
    detail::csvSink().file = std::fopen(path.c_str(), "w");
    if (detail::csvSink().file == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for CSV output\n",
                   path.c_str());
    }
    detail::csvSink().metricsPath = dir + "/" + slug + ".metrics.json";
  }
}

inline void csvCell(const std::string& v, bool first) {
  if (detail::csvSink().file == nullptr) return;
  std::fprintf(detail::csvSink().file, "%s%s", first ? "" : ",", v.c_str());
}

inline void printHeader(const std::vector<std::string>& columns) {
  bool first = true;
  for (const auto& c : columns) {
    std::printf("%16s", c.c_str());
    csvCell(c, first);
    first = false;
  }
  std::printf("\n");
  if (detail::csvSink().file != nullptr) {
    std::fprintf(detail::csvSink().file, "\n");
  }
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%16s",
                                                               "---------");
  std::printf("\n");
}

inline void printCell(const std::string& v, bool first) {
  std::printf("%16s", v.c_str());
  csvCell(v, first);
}
inline void printCell(double v, bool first) {
  std::printf("%16.1f", v);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  csvCell(buffer, first);
}
inline void printCell(std::uint64_t v, bool first) {
  std::printf("%16llu", static_cast<unsigned long long>(v));
  csvCell(std::to_string(v), first);
}

template <typename... Cells>
void printRow(const Cells&... cells) {
  bool first = true;
  ((printCell(cells, first), first = false), ...);
  std::printf("\n");
  if (detail::csvSink().file != nullptr) {
    std::fprintf(detail::csvSink().file, "\n");
  }
}

inline void printScale(const Scale& s) {
  std::printf(
      "scale: N=%zu, m=%zu, q=%.2f, repeats=%zu, seed=%llu "
      "(set DSUD_N / DSUD_M / DSUD_Q / DSUD_REPEATS / DSUD_SCALE=paper)\n",
      s.n, s.m, s.q, s.repeats, static_cast<unsigned long long>(s.seed));
}

}  // namespace dsud::bench
